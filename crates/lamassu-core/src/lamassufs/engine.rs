//! The Lamassu data path: segment I/O, multiphase commit, recovery.
//!
//! [`Engine`] holds everything shared by all files of one mount (backing
//! store, geometry, crypto contexts, the block-buffer pool, profiler);
//! [`LamassuFile`] holds the per-object state (logical size, the in-memory
//! write buffer that batches up to `R` dirty blocks, a decrypted-metadata
//! cache, and the reusable commit staging buffer). All the mechanics
//! described in §2.2–§2.5 of the paper live here.
//!
//! # Zero-allocation steady state
//!
//! Once a mount is warm, an aligned read or write performs **no heap
//! allocation** (`tests/zero_alloc.rs` pins this with a counting global
//! allocator). The pieces that make that true:
//!
//! * every block-sized scratch buffer — read-edge staging, metadata
//!   staging, dirty-write staging — comes from the mount's
//!   [`BlockPool`] and returns to it on drop;
//! * the per-file dirty-block buffer is a sorted `Vec` whose capacity
//!   persists across commits, and commits stage through one reusable
//!   contiguous `commit_buf` so batch crypto runs on a span, not a
//!   ref-vector;
//! * metadata blocks are updated **in place** in the per-file cache and
//!   sealed directly into a pooled block ([`MetadataBlock::seal_into`]) —
//!   no clone, no fresh ciphertext vector;
//! * the variable-length bookkeeping a span read needs (run boundaries,
//!   per-run keys, re-derived keys) lives in thread-local scratch vectors
//!   that amortize to zero after first use.
//!
//! The remaining allocations are deliberate: cold metadata-cache misses,
//! recovery/verify sweeps, and the `O(workers)` fan-out of a parallel crypto
//! batch (absent when the span runs inline — see
//! [`CryptoPool::runs_inline`]).
//!
//! # Concurrency
//!
//! The whole read path takes only a **shared** borrow of [`LamassuFile`], so
//! the shim can serve it under an `RwLock` read guard and any number of
//! readers proceed in parallel on one open file. The pieces a read must
//! still mutate live behind their own short-critical-section locks: the
//! decrypted-metadata cache is a [`Mutex`]`<HashMap>` (locked only to probe,
//! insert, or copy keys out — never across store I/O or crypto). Writers —
//! buffering, commit, truncate, recovery — take `&mut LamassuFile` and
//! therefore run under the shim's exclusive write guard, which is what keeps
//! the multiphase commit invisible to concurrent readers.

use crate::iovec::{self, GatherCursor};
use crate::lamassufs::{IntegrityMode, LamassuConfig};
use crate::pool::{with_tls, BlockBuf, BlockPool};
use crate::profiler::{Category, Profiler};
use crate::span::{IoMode, SpanConfig, SpanPlan, SpanPlanner, SpanPolicy};
use crate::{FsError, Result};
use lamassu_crypto::aes::Aes256;
use lamassu_crypto::gcm::Aes256Gcm;
use lamassu_crypto::kdf::ConvergentKdf;
use lamassu_crypto::pool::CryptoPool;
use lamassu_crypto::{batch, cbc, fixsliced, stats};
use lamassu_crypto::{CryptoBackend, Key256, FIXED_IV};
use lamassu_format::{Geometry, MetadataBlock, TransientEntry};
use lamassu_keymgr::ZoneKeys;
use lamassu_storage::{Completion, ObjectStore, StorageError, SubmitQueue, SubmitTicket};
use parking_lot::{Mutex, RwLock};
use rand::RngCore;
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::IoSlice;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Maximum number of decrypted metadata blocks cached per open file.
const META_CACHE_CAP: usize = 8192;

/// Extra block-pool capacity beyond the largest single-write working set:
/// read-edge staging (two per in-flight reader), metadata staging, and the
/// truncate/verify scratch block.
const POOL_SLACK_BLOCKS: usize = 16;

/// Idle blocks the auto-sized pool keeps for the write path: large
/// application writes stage up to one span of dirty blocks before the batch
/// commit drains them back.
const POOL_WRITE_BLOCKS: usize = 256;

/// One maximal run of consecutive disk-backed blocks within a span read:
/// `(first block, index of its first key in the scratch key vec, length)`.
type RunSpan = (u64, usize, usize);

thread_local! {
    /// Span-read planning scratch: run boundaries, the flat per-run key
    /// copies, and the hole block indices of the current segment group.
    /// Thread-local so the read path can use it under a *shared* file
    /// borrow, reused so the steady state allocates nothing.
    static RUN_SCRATCH: RefCell<(Vec<RunSpan>, Vec<Key256>, Vec<u64>)> =
        const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
    /// Derived/recomputed key scratch (integrity re-derivation, commit key
    /// derivation).
    static KEY_SCRATCH: RefCell<Vec<Key256>> = const { RefCell::new(Vec::new()) };
    /// Async-pipeline scratch: the thread's submission queue, the drained
    /// completion staging, and the per-run in-flight records. Thread-local
    /// for the same reason as [`RUN_SCRATCH`] — the read path holds only a
    /// shared file borrow — and reused so the warm async path allocates
    /// nothing.
    static ASYNC_SCRATCH: RefCell<AsyncScratch> = RefCell::new(AsyncScratch::default());
}

/// Reusable state of one thread's submission/completion pipeline.
#[derive(Default)]
struct AsyncScratch {
    queue: SubmitQueue,
    completions: Vec<Completion>,
    reads: Vec<PendingRead>,
}

/// One submitted span-read run awaiting its completion: the ticket that
/// identifies it, the geometry needed to finish it, and the staged edge
/// buffers it owns until the completion lands (the pooled buffers return to
/// the pool when the record is cleared).
struct PendingRead {
    ticket: SubmitTicket,
    run_start: u64,
    /// Index of the run's first key in the caller's flat key scratch.
    key_idx: usize,
    /// Number of blocks (= keys) in the run.
    len: usize,
    head_stage: Option<BlockBuf>,
    tail_stage: Option<BlockBuf>,
    /// The contiguous middle region of the caller's buffer.
    mid_range: Range<usize>,
}

/// Outcome of a crash-recovery scan over one file (paper §2.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments whose metadata block was examined.
    pub segments_scanned: u64,
    /// Segments found mid-update and repaired.
    pub segments_repaired: u64,
    /// Blocks whose *new* key matched the on-disk data (the data write made
    /// it to disk before the crash).
    pub blocks_kept_new: u64,
    /// Blocks rolled back to their *previous* key (the crash hit before the
    /// data write).
    pub blocks_restored_old: u64,
    /// Blocks that were brand new and never reached disk; their key slot was
    /// cleared.
    pub blocks_cleared: u64,
}

/// Outcome of a full integrity verification pass (paper §2.5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Data blocks whose convergent-hash check was run.
    pub data_blocks_checked: u64,
    /// Metadata blocks whose AES-GCM tag was verified.
    pub metadata_blocks_checked: u64,
    /// Segments still marked mid-update (recovery should be run).
    pub mid_update_segments: u64,
    /// Logical block indices that failed the convergent-hash check.
    pub corrupt_data_blocks: Vec<u64>,
    /// Segment indices whose metadata block failed authentication.
    pub corrupt_metadata_blocks: Vec<u64>,
}

impl VerifyReport {
    /// True if no corruption was found.
    pub fn is_clean(&self) -> bool {
        self.corrupt_data_blocks.is_empty() && self.corrupt_metadata_blocks.is_empty()
    }
}

/// Crypto material derived from the zone keys, rebuilt on re-keying.
struct CryptoCtx {
    keys: ZoneKeys,
    kdf: ConvergentKdf,
    gcm: Aes256Gcm,
}

impl CryptoCtx {
    fn new(keys: ZoneKeys, backend: CryptoBackend) -> Self {
        CryptoCtx {
            kdf: ConvergentKdf::new(&keys.inner),
            gcm: Aes256Gcm::with_backend(&keys.outer, backend),
            keys,
        }
    }
}

/// Per-file state: logical size, write buffer, metadata cache and the
/// reusable commit staging of the zero-allocation data path.
///
/// Readers hold the shim's shared guard and use only `&self`; the
/// metadata cache has its own interior lock so concurrent readers can warm
/// it. Everything else mutable (the write buffer, the commit staging, the
/// size fields) is reached through `&mut self` under the shim's exclusive
/// write guard.
pub(crate) struct LamassuFile {
    name: String,
    logical_size: u64,
    size_dirty: bool,
    /// Dirty plaintext blocks not yet committed, sorted by logical block
    /// index. Flushed as a batch once it holds `R` blocks (§2.4). The
    /// buffers come from the mount's [`BlockPool`] and return to it when
    /// the flush drains them; the `Vec`'s own capacity persists across
    /// flushes, so steady-state writing allocates nothing.
    pending: Vec<(u64, BlockBuf)>,
    /// Decrypted metadata blocks, keyed by segment index. Kept in sync with
    /// disk by the in-place update path. Behind its own lock (held only to
    /// probe, insert or copy out — never across I/O) so the read path can
    /// populate it under a shared file guard.
    meta_cache: Mutex<HashMap<u64, MetadataBlock>>,
    /// Contiguous staging for one commit chunk (≤ `R` blocks): plaintext is
    /// gathered here, encrypted in place as one span, and written out run by
    /// run. Grown once, reused forever.
    commit_buf: Vec<u8>,
    /// Block indices of the chunk staged in `commit_buf` (reused).
    chunk_ids: Vec<u64>,
}

impl LamassuFile {
    fn new(name: &str) -> Self {
        LamassuFile {
            name: name.to_string(),
            logical_size: 0,
            size_dirty: false,
            pending: Vec::new(),
            meta_cache: Mutex::new(HashMap::new()),
            commit_buf: Vec::new(),
            chunk_ids: Vec::new(),
        }
    }

    /// The file's logical (application-visible) size in bytes.
    pub(crate) fn logical_size(&self) -> u64 {
        self.logical_size
    }

    /// The object name this state currently refers to.
    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Points the state at a new object name after a rename.
    pub(crate) fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// The buffered plaintext for `block`, if it is staged for commit.
    fn pending_block(&self, block: u64) -> Option<&BlockBuf> {
        self.pending
            .binary_search_by_key(&block, |(b, _)| *b)
            .ok()
            .map(|i| &self.pending[i].1)
    }
}

/// Shared per-mount machinery.
pub(crate) struct Engine {
    store: Arc<dyn ObjectStore>,
    geometry: Geometry,
    integrity: IntegrityMode,
    span: SpanConfig,
    /// The mount's shared crypto worker pool (see [`crate::span`]).
    pool: CryptoPool,
    /// The mount's recycled block-buffer pool (see [`crate::pool`]).
    blocks: BlockPool,
    planner: SpanPlanner,
    crypto: RwLock<CryptoCtx>,
    profiler: Arc<Profiler>,
}

impl Engine {
    pub(crate) fn new(store: Arc<dyn ObjectStore>, keys: ZoneKeys, config: LamassuConfig) -> Self {
        let auto_cap = POOL_WRITE_BLOCKS + config.geometry.reserved_slots() + POOL_SLACK_BLOCKS;
        let blocks = BlockPool::new(
            config.geometry.block_size(),
            config.span.pool_capacity(auto_cap),
        );
        let profiler = Profiler::new();
        profiler.attach_pool(&blocks);
        Engine {
            store,
            geometry: config.geometry,
            integrity: config.integrity,
            span: config.span,
            pool: config.span.pool(),
            blocks,
            planner: SpanPlanner::new(config.geometry.block_size()),
            crypto: RwLock::new(CryptoCtx::new(keys, config.span.crypto)),
            profiler,
        }
    }

    pub(crate) fn profiler(&self) -> Arc<Profiler> {
        self.profiler.clone()
    }

    /// Borrow of the profiler for the hot path (no refcount traffic).
    pub(crate) fn profiler_ref(&self) -> &Profiler {
        &self.profiler
    }

    pub(crate) fn geometry(&self) -> Geometry {
        self.geometry
    }

    pub(crate) fn integrity_mode(&self) -> IntegrityMode {
        self.integrity
    }

    /// The mount's block-buffer pool (stats surface through the shim).
    pub(crate) fn block_pool(&self) -> &BlockPool {
        &self.blocks
    }

    pub(crate) fn object_exists(&self, name: &str) -> bool {
        self.store.exists(name)
    }

    pub(crate) fn list_objects(&self) -> Vec<String> {
        self.store.list()
    }

    pub(crate) fn physical_size(&self, name: &str) -> Result<u64> {
        self.io(|| self.store.len(name))
    }

    pub(crate) fn remove(&self, name: &str) -> Result<()> {
        self.io(|| self.store.remove(name)).map_err(|e| match e {
            FsError::Storage(StorageError::NotFound { name }) => FsError::NotFound { path: name },
            other => other,
        })
    }

    pub(crate) fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.io(|| self.store.rename(from, to))
    }

    pub(crate) fn sync_object(&self, name: &str) -> Result<()> {
        self.io(|| self.store.flush(name))
    }

    /// Replaces the mount's key pair (after a completed re-keying pass).
    pub(crate) fn switch_keys(&self, keys: ZoneKeys) {
        *self.crypto.write() = CryptoCtx::new(keys, self.span.crypto);
    }

    /// Charges a backing-store call to the I/O latency category.
    fn io<T>(&self, f: impl FnOnce() -> lamassu_storage::Result<T>) -> Result<T> {
        self.io_meter(Category::Io, f).map_err(FsError::from)
    }

    /// Charges a backing-store call — wall time plus the virtual transport
    /// time it advanced — to `cat`. The async pipeline meters its submit
    /// calls as [`Category::Io`] (the makespan growth each submission adds to
    /// the channel) and its poll/wait calls as [`Category::Queue`] (the time
    /// spent blocked on completions), so the Figure 9 breakdown separates
    /// transport from submission-queue stalls.
    fn io_meter<T>(&self, cat: Category, f: impl FnOnce() -> T) -> T {
        let virt_before = self.store.io_time();
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed() + self.store.io_time().saturating_sub(virt_before);
        self.profiler.add(cat, elapsed);
        out
    }

    /// Additional authenticated data binding a metadata block to its segment
    /// position so sealed blocks cannot be transplanted between segments.
    /// A fixed-size stack value — the hot write path builds one per seal.
    fn aad(segment: u64) -> [u8; 23] {
        let mut aad = [0u8; 23];
        aad[..15].copy_from_slice(b"lamassu-v1-seg-");
        aad[15..].copy_from_slice(&segment.to_le_bytes());
        aad
    }

    // ------------------------------------------------------------------
    // Object lifecycle
    // ------------------------------------------------------------------

    /// Creates a new empty Lamassu object: one sealed metadata block holding
    /// a logical size of zero.
    pub(crate) fn create(&self, name: &str) -> Result<LamassuFile> {
        self.io(|| self.store.create(name)).map_err(|e| match e {
            FsError::Storage(StorageError::AlreadyExists { name }) => {
                FsError::AlreadyExists { path: name }
            }
            other => other,
        })?;
        let file = LamassuFile::new(name);
        let mb = MetadataBlock::new(&self.geometry);
        self.write_meta(&file, 0, mb)?;
        Ok(file)
    }

    /// Loads an existing object, reading its authoritative logical size from
    /// the final segment's metadata block (paper §2.3).
    pub(crate) fn load(&self, name: &str) -> Result<LamassuFile> {
        let mut file = LamassuFile::new(name);
        let last = self.last_physical_segment(name)?;
        let size = self.with_meta(&file, last, |mb| mb.logical_size)?;
        file.logical_size = size;
        Ok(file)
    }

    /// Index of the last segment present in the physical object.
    fn last_physical_segment(&self, name: &str) -> Result<u64> {
        let physical = self.io(|| self.store.len(name))?;
        let seg_bytes = self.geometry.segment_bytes();
        Ok(physical.div_ceil(seg_bytes).max(1) - 1)
    }

    // ------------------------------------------------------------------
    // Metadata I/O
    // ------------------------------------------------------------------

    /// Fetches and decrypts the metadata block for `segment` from the store
    /// (no cache interaction). A segment that does not exist on disk yet —
    /// or reads back as an all-zero sparse hole — means "empty".
    fn load_meta(&self, file: &LamassuFile, segment: u64) -> Result<MetadataBlock> {
        let offset = self.geometry.metadata_block_offset(segment);
        let bs = self.geometry.block_size();
        let mut staged = self.blocks.take();
        let n = self.io(|| self.store.read_into(&file.name, offset, &mut staged))?;
        if n < bs {
            return Ok(MetadataBlock::new(&self.geometry));
        }
        if staged.iter().all(|&b| b == 0) {
            // A hole left by a sparse write: no metadata was ever stored.
            return Ok(MetadataBlock::new(&self.geometry));
        }
        let crypto = self.crypto.read();
        let mb = self.profiler.time(Category::Decrypt, || {
            MetadataBlock::unseal(&self.geometry, &crypto.gcm, &Self::aad(segment), &staged)
        })?;
        Ok(mb)
    }

    /// Runs `f` against the (cached) metadata block for `segment`.
    ///
    /// This is the read path's accessor: a cache hit calls `f` under the
    /// cache lock with **no clone and no allocation**; a miss loads and
    /// inserts first. Shared-borrow safe — concurrent readers of one file
    /// serialize only for the duration of `f` (which must not perform I/O or
    /// call back into the metadata layer).
    fn with_meta<T>(
        &self,
        file: &LamassuFile,
        segment: u64,
        f: impl FnOnce(&MetadataBlock) -> T,
    ) -> Result<T> {
        {
            let cache = file.meta_cache.lock();
            if let Some(mb) = cache.get(&segment) {
                return Ok(f(mb));
            }
        }
        let mb = self.load_meta(file, segment)?;
        let mut cache = file.meta_cache.lock();
        if cache.len() >= META_CACHE_CAP {
            cache.clear();
        }
        // A concurrent reader may have inserted meanwhile — both fetched the
        // same decrypted bytes, so either value serves.
        Ok(f(cache.entry(segment).or_insert(mb)))
    }

    /// Reads (and caches) the metadata block for `segment` as an owned
    /// value. Cold-path form of [`Engine::with_meta`] for recovery and
    /// verification sweeps that hold onto the block.
    fn read_meta(&self, file: &LamassuFile, segment: u64) -> Result<MetadataBlock> {
        self.with_meta(file, segment, |mb| mb.clone())
    }

    /// Seals `sealed_out` from `mb` and writes it at `segment`'s offset.
    fn seal_and_write(
        &self,
        file: &LamassuFile,
        segment: u64,
        mb: &MetadataBlock,
        sealed_out: &mut [u8],
    ) -> Result<()> {
        let mut nonce = [0u8; 12];
        rand::thread_rng().fill_bytes(&mut nonce);
        {
            let crypto = self.crypto.read();
            self.profiler.time(Category::Encrypt, || {
                mb.seal_into(
                    &self.geometry,
                    &crypto.gcm,
                    &nonce,
                    &Self::aad(segment),
                    sealed_out,
                )
            });
        }
        let offset = self.geometry.metadata_block_offset(segment);
        self.io(|| self.store.write_at(&file.name, offset, sealed_out))
    }

    /// Seals and writes the metadata block for `segment`, updating the cache
    /// after the write lands (cold paths: create, truncate sweeps, recovery).
    fn write_meta(&self, file: &LamassuFile, segment: u64, mb: MetadataBlock) -> Result<()> {
        let mut sealed = self.blocks.take();
        self.seal_and_write(file, segment, &mb, &mut sealed)?;
        let mut cache = file.meta_cache.lock();
        if cache.len() >= META_CACHE_CAP {
            cache.clear();
        }
        cache.insert(segment, mb);
        Ok(())
    }

    /// Mutates the cached metadata block for `segment` **in place** and
    /// persists it — the hot commit path's form of [`Engine::write_meta`]:
    /// no clone of the key table, sealing into a pooled block.
    ///
    /// Only called under the shim's exclusive file guard (commit, truncate,
    /// size persistence), so no reader observes the cache between the
    /// mutation and the write. If the mutation or the write fails, the
    /// cache entry is dropped so a later read refetches the on-disk truth
    /// instead of trusting a half-applied update.
    fn update_meta(
        &self,
        file: &LamassuFile,
        segment: u64,
        mutate: impl FnOnce(&mut MetadataBlock) -> Result<()>,
    ) -> Result<()> {
        // Take the block *out* of the cache (a move, not a clone) so the
        // mutation, sealing and write all run without the cache lock —
        // keeping the "never held across I/O or crypto" invariant literally
        // true. The entry's brief absence is unobservable: update_meta only
        // runs under the shim's exclusive file guard.
        let mut mb = match file.meta_cache.lock().remove(&segment) {
            Some(mb) => mb,
            None => self.load_meta(file, segment)?,
        };
        let mut sealed = self.blocks.take();
        mutate(&mut mb)?;
        self.seal_and_write(file, segment, &mb, &mut sealed)?;
        // Re-insert only after the write landed; on any error above the
        // entry stays absent and a later read refetches the on-disk truth.
        let mut cache = file.meta_cache.lock();
        if cache.len() >= META_CACHE_CAP {
            cache.clear();
        }
        cache.insert(segment, mb);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data-block crypto
    // ------------------------------------------------------------------

    /// Derives the convergent key for a plaintext block (Equation 1),
    /// charging the hash/KDF time to the `GetCEKey` category. On the
    /// fixsliced backend the single-block derivation still runs the keying
    /// step through the constant-time cipher.
    fn derive_key(&self, plaintext: &[u8]) -> Key256 {
        let crypto = self.crypto.read();
        self.profiler
            .time(Category::GetCeKey, || match self.span.crypto {
                CryptoBackend::Fixsliced => {
                    stats::count_scalar_derives(1);
                    crypto.kdf.derive_for_block_ct(plaintext)
                }
                CryptoBackend::TTable => {
                    stats::count_scalar_derives(1);
                    crypto.kdf.derive_for_block(plaintext)
                }
            })
    }

    /// Convergent encryption of one data block in place (Equation 2).
    /// A single block is one strict CBC chain — below the wide kernel's
    /// amortization width — so this always uses the T-table path (the
    /// documented scalar fallback of the fixsliced backend).
    fn encrypt_in_place(&self, buf: &mut [u8], key: &Key256) {
        self.profiler.time(Category::Encrypt, || {
            stats::count_scalar_blocks(buf.len() / 16);
            let cipher = Aes256::new(key);
            cbc::encrypt_in_place(&cipher, &FIXED_IV, buf)
                .expect("data blocks are 16-byte aligned");
        })
    }

    /// Decryption of one data block in place. CBC decryption is wide
    /// *within* a chain, so the fixsliced backend takes the wide kernel
    /// even for one block.
    fn decrypt_in_place(&self, buf: &mut [u8], key: &Key256) {
        self.profiler
            .time(Category::Decrypt, || match self.span.crypto {
                CryptoBackend::Fixsliced => {
                    stats::count_wide_blocks(buf.len() / 16);
                    let cipher = fixsliced::Aes256Fix::new(key);
                    fixsliced::cbc_decrypt(&cipher, &FIXED_IV, buf);
                }
                CryptoBackend::TTable => {
                    stats::count_scalar_blocks(buf.len() / 16);
                    let cipher = Aes256::new(key);
                    cbc::decrypt_in_place(&cipher, &FIXED_IV, buf)
                        .expect("data blocks are 16-byte aligned");
                }
            })
    }

    /// Decryption of one data block into a fresh vector (recovery path).
    fn decrypt_block(&self, ciphertext: &[u8], key: &Key256) -> Vec<u8> {
        let mut buf = ciphertext.to_vec();
        self.decrypt_in_place(&mut buf, key);
        buf
    }

    /// The §2.5 integrity self-check: the hash of the decrypted block must
    /// re-derive the key it was decrypted with.
    fn key_matches_plaintext(&self, plaintext: &[u8], key: &Key256) -> bool {
        self.derive_key(plaintext) == *key
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Reads one logical block as plaintext into `dest` (exactly one block
    /// long). Returns `false` — with `dest` zero-filled — when the block has
    /// never been written (a hole).
    fn read_block_into(
        &self,
        file: &LamassuFile,
        logical_block: u64,
        dest: &mut [u8],
        force_integrity: bool,
    ) -> Result<bool> {
        debug_assert_eq!(dest.len(), self.geometry.block_size());
        if let Some(plain) = file.pending_block(logical_block) {
            dest.copy_from_slice(plain);
            return Ok(true);
        }
        let loc = self.geometry.locate_block(logical_block);
        let key = match self.with_meta(file, loc.segment, |mb| mb.key(loc.slot).copied())? {
            Some(k) => k,
            None => {
                dest.fill(0);
                return Ok(false);
            }
        };
        let n = self.io(|| self.store.read_into(&file.name, loc.physical_offset, dest))?;
        if n < dest.len() {
            // Key present but data never reached disk (should only happen on
            // an unrecovered crash); treat as a hole.
            dest.fill(0);
            return Ok(false);
        }
        self.decrypt_in_place(dest, &key);
        let check = force_integrity || matches!(self.integrity, IntegrityMode::Full);
        if check && !self.key_matches_plaintext(dest, &key) {
            return Err(FsError::IntegrityViolation {
                path: file.name.clone(),
                logical_block,
            });
        }
        Ok(true)
    }

    /// Reads into `buf` at `offset`, clamped to the logical size; returns the
    /// number of bytes read. Under [`SpanPolicy::Batched`] the span pipeline
    /// fetches whole runs of blocks per backend round trip and decrypts them
    /// in parallel; [`SpanPolicy::PerBlock`] keeps the original
    /// one-block-at-a-time path as the verification oracle.
    ///
    /// Takes only a shared borrow: the shim serves this under its read
    /// guard, so any number of readers run concurrently on one file.
    pub(crate) fn read_range_into(
        &self,
        file: &LamassuFile,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize> {
        if offset >= file.logical_size {
            return Ok(0);
        }
        let len = buf.len().min((file.logical_size - offset) as usize);
        match (self.span.policy, self.span.io) {
            (SpanPolicy::PerBlock, _) => {
                self.read_range_per_block(file, offset, &mut buf[..len])?
            }
            (SpanPolicy::Batched, IoMode::Async) => {
                self.read_range_async(file, offset, &mut buf[..len])?
            }
            (SpanPolicy::Batched, IoMode::Blocking) => {
                self.read_range_batched(file, offset, &mut buf[..len])?
            }
        }
        Ok(len)
    }

    /// The per-block read pipeline: one backend read and one serial decrypt
    /// per block. Whole aligned blocks are decrypted directly in `buf`;
    /// sub-block spans stage through one lazily borrowed pooled block
    /// (per-call, so concurrent readers never share scratch memory).
    fn read_range_per_block(&self, file: &LamassuFile, offset: u64, buf: &mut [u8]) -> Result<()> {
        let bs = self.geometry.block_size();
        let mut scratch: Option<BlockBuf> = None;
        let mut out = 0usize;
        for (block, in_block, take) in self.geometry.block_spans(offset, buf.len()) {
            if in_block == 0 && take == bs {
                self.read_block_into(file, block, &mut buf[out..out + take], false)?;
            } else {
                let scratch = scratch.get_or_insert_with(|| self.blocks.take());
                self.read_block_into(file, block, scratch, false)?;
                buf[out..out + take].copy_from_slice(&scratch[in_block..in_block + take]);
            }
            out += take;
        }
        Ok(())
    }

    /// The span read pipeline: plans the range, groups it by segment, and
    /// serves every maximal run of consecutive disk-backed blocks with one
    /// vectored backend read followed by one parallel batch decrypt (plus one
    /// parallel batch re-derivation when full integrity checking is on).
    /// Pending (buffered) blocks and holes are served without touching the
    /// store. Run boundaries and key copies live in thread-local scratch, so
    /// a warm aligned read allocates nothing.
    fn read_range_batched(&self, file: &LamassuFile, offset: u64, buf: &mut [u8]) -> Result<()> {
        let plan = self
            .profiler
            .time(Category::Plan, || self.planner.plan(offset, buf.len()));
        let n_per_seg = self.geometry.keys_per_metadata_block() as u64;
        with_tls(&RUN_SCRATCH, |(runs, keys, holes)| {
            let mut block = plan.first_block;
            while block <= plan.last_block {
                let segment = block / n_per_seg;
                let group_end = ((segment + 1) * n_per_seg - 1).min(plan.last_block);
                runs.clear();
                keys.clear();
                holes.clear();
                // Classify every block of the segment group under one cache
                // probe. The closure only copies keys out and records run /
                // hole boundaries — all byte shuffling happens after the
                // lock drops, so concurrent readers serialize on key copies
                // only. Disk-backed blocks accumulate into maximal
                // consecutive runs (consecutive logical blocks of one
                // segment are physically contiguous).
                self.with_meta(file, segment, |mb| {
                    for b in block..=group_end {
                        if file.pending_block(b).is_some() {
                            // Served from the write buffer below (outside
                            // the lock — `pending` is stable under the
                            // shared file guard).
                            continue;
                        }
                        let slot = (b % n_per_seg) as usize;
                        match mb.key(slot) {
                            None => holes.push(b),
                            Some(key) => {
                                match runs.last_mut() {
                                    Some((start, _, len)) if *start + *len as u64 == b => *len += 1,
                                    _ => runs.push((b, keys.len(), 1)),
                                }
                                keys.push(*key);
                            }
                        }
                    }
                })?;
                for b in block..=group_end {
                    if let Some(plain) = file.pending_block(b) {
                        let (in_block, take) = plan.span_of(b);
                        buf[plan.buf_range(b)].copy_from_slice(&plain[in_block..in_block + take]);
                    }
                }
                for &b in holes.iter() {
                    buf[plan.buf_range(b)].fill(0);
                }
                for &(run_start, key_idx, len) in runs.iter() {
                    self.read_run_batched(
                        file,
                        &plan,
                        run_start,
                        &keys[key_idx..key_idx + len],
                        buf,
                    )?;
                }
                block = group_end + 1;
            }
            Ok(())
        })
    }

    /// The async span read pipeline ([`IoMode::Async`], the default): same
    /// plan and classification as [`Engine::read_range_batched`], but instead
    /// of one blocking vectored read per run, **all** of the span's runs are
    /// submitted to the store's completion queue up front and each run's
    /// batch decrypt / integrity check starts as its completion lands while
    /// later runs are still in flight. A single client thread therefore keeps
    /// up to `StorageProfile.queue_depth` backend operations overlapped, and
    /// crypto for early runs overlaps the transport of later ones.
    ///
    /// Completion-token ownership: each submitted run's staged edge buffers
    /// live in the thread-local [`PendingRead`] record its ticket indexes, so
    /// the borrow handed to the store ends at submit-return and the result —
    /// byte count *or* deferred fault — surfaces only through the drained
    /// [`Completion`]. Holes, pending blocks and classification are identical
    /// to the blocking oracle; the differential tests replay workloads
    /// through both modes and require byte-identical results.
    fn read_range_async(&self, file: &LamassuFile, offset: u64, buf: &mut [u8]) -> Result<()> {
        let plan = self
            .profiler
            .time(Category::Plan, || self.planner.plan(offset, buf.len()));
        let n_per_seg = self.geometry.keys_per_metadata_block() as u64;
        with_tls(&RUN_SCRATCH, |(runs, keys, holes)| {
            runs.clear();
            keys.clear();
            // Accumulate the runs of *every* segment group before touching
            // the store, so the submission batch covers the whole span.
            let mut block = plan.first_block;
            while block <= plan.last_block {
                let segment = block / n_per_seg;
                let group_end = ((segment + 1) * n_per_seg - 1).min(plan.last_block);
                holes.clear();
                let group_first_run = runs.len();
                self.with_meta(file, segment, |mb| {
                    for b in block..=group_end {
                        if file.pending_block(b).is_some() {
                            continue;
                        }
                        let slot = (b % n_per_seg) as usize;
                        match mb.key(slot) {
                            None => holes.push(b),
                            Some(key) => {
                                // Runs never merge across a segment boundary:
                                // a metadata block sits between the groups on
                                // disk.
                                let can_merge = runs.len() > group_first_run;
                                match runs.last_mut() {
                                    Some((start, _, len))
                                        if can_merge && *start + *len as u64 == b =>
                                    {
                                        *len += 1
                                    }
                                    _ => runs.push((b, keys.len(), 1)),
                                }
                                keys.push(*key);
                            }
                        }
                    }
                })?;
                for b in block..=group_end {
                    if let Some(plain) = file.pending_block(b) {
                        let (in_block, take) = plan.span_of(b);
                        buf[plan.buf_range(b)].copy_from_slice(&plain[in_block..in_block + take]);
                    }
                }
                for &b in holes.iter() {
                    buf[plan.buf_range(b)].fill(0);
                }
                block = group_end + 1;
            }
            self.read_runs_async(file, &plan, runs, keys, buf)
        })
    }

    /// Submits every run of a planned span to the store's completion queue,
    /// then drains completions — decrypting and checking each run the moment
    /// its completion lands — until all runs have finished. Ends with a
    /// [`ObjectStore::wait_completions`] barrier so the channel's blocking
    /// frontier catches up to the last in-flight submission.
    fn read_runs_async(
        &self,
        file: &LamassuFile,
        plan: &SpanPlan,
        runs: &[RunSpan],
        keys: &[Key256],
        buf: &mut [u8],
    ) -> Result<()> {
        if runs.is_empty() {
            return Ok(());
        }
        let bs = self.geometry.block_size();
        with_tls(&ASYNC_SCRATCH, |scratch| {
            let AsyncScratch {
                queue: q,
                completions,
                reads,
            } = scratch;
            q.reset();
            completions.clear();
            reads.clear();

            // Submission phase: stage the edge buffers of every run and hand
            // the whole span to the store back to back. The store executes
            // the data movement eagerly (the buffer borrows end here) but
            // schedules the transport cost onto its queue-depth lanes, so the
            // submissions overlap in virtual time.
            for &(run_start, key_idx, len) in runs {
                let run_last = run_start + len as u64 - 1;
                let head_staged = !plan.is_full(run_start);
                let tail_staged = run_last != run_start && !plan.is_full(run_last);
                let mut head_stage = head_staged.then(|| self.blocks.take());
                let mut tail_stage = tail_staged.then(|| self.blocks.take());
                let mid_first = run_start + head_staged as u64;
                let mid_count = len - head_staged as usize - tail_staged as usize;
                let mid_range = if mid_count > 0 {
                    let start = plan.buf_range(mid_first).start;
                    start..start + mid_count * bs
                } else {
                    0..0
                };
                let phys = self.geometry.locate_block(run_start).physical_offset;
                let mid_slice = &mut buf[mid_range.clone()];
                let ticket = iovec::with_scatter3(
                    head_stage.as_deref_mut(),
                    mid_slice,
                    tail_stage.as_deref_mut(),
                    |io_bufs| {
                        self.io_meter(Category::Io, || {
                            self.store
                                .submit_read_vectored(q, &file.name, phys, io_bufs)
                        })
                    },
                );
                self.profiler.ops_submitted(1);
                reads.push(PendingRead {
                    ticket,
                    run_start,
                    key_idx,
                    len,
                    head_stage,
                    tail_stage,
                    mid_range,
                });
            }

            // Completion phase: serve completions in whatever order the store
            // releases them — matching by ticket, never by position — and
            // finish each run (zero-fill short reads, decrypt, integrity
            // check, copy edges out) while later runs are still in flight.
            // The blocking oracle stops at its first failing run, so on
            // multiple failures the error of the earliest run wins.
            let mut first_err: Option<(u64, FsError)> = None;
            let mut remaining = reads.len();
            while remaining > 0 {
                completions.clear();
                self.io_meter(Category::Queue, || {
                    self.store.poll_completions(q, completions);
                    if completions.is_empty() {
                        self.store.wait_completions(q, completions);
                    }
                });
                if completions.is_empty() {
                    debug_assert!(false, "store dropped an in-flight completion");
                    break;
                }
                self.profiler.ops_completed(completions.len() as u64);
                remaining -= completions.len().min(remaining);
                for c in completions.iter() {
                    let p = reads
                        .iter_mut()
                        .find(|p| p.ticket == c.ticket)
                        .expect("every completion matches a submitted run");
                    let run_keys = &keys[p.key_idx..p.key_idx + p.len];
                    let finished = match &c.result {
                        Ok(n) => self.finish_run(
                            file,
                            plan,
                            p.run_start,
                            run_keys,
                            buf,
                            &mut p.head_stage,
                            &mut p.tail_stage,
                            p.mid_range.clone(),
                            *n,
                        ),
                        Err(e) => Err(FsError::from(e.clone())),
                    };
                    // Return the staged edges to the pool promptly; a
                    // drained ticket is dead either way.
                    p.head_stage = None;
                    p.tail_stage = None;
                    if let Err(e) = finished {
                        match &first_err {
                            Some((s, _)) if *s <= p.run_start => {}
                            _ => first_err = Some((p.run_start, e)),
                        }
                    }
                }
            }
            reads.clear();

            // Transport barrier: even when every completion arrived via
            // poll, the channel's lanes may still run past its blocking
            // frontier — wait_completions raises the floor so later blocking
            // operations cannot start before the span's I/O finishes.
            completions.clear();
            self.io_meter(Category::Queue, || {
                self.store.wait_completions(q, completions)
            });
            self.profiler.ops_completed(completions.len() as u64);
            debug_assert!(completions.is_empty(), "barrier found undrained work");

            match first_err {
                Some((_, e)) => Err(e),
                None => Ok(()),
            }
        })
    }

    /// Reads and decrypts one physically contiguous run of `keys.len()`
    /// blocks starting at `run_start`.
    ///
    /// A fully aligned run — the steady-state shape — needs no staging at
    /// all: one backend read lands the ciphertext in the caller's buffer and
    /// one contiguous batch decrypt (plus, under full integrity, one
    /// contiguous batch re-derivation into thread-local scratch) finishes
    /// it, with zero allocation. Partial edge blocks stage through pooled
    /// blocks and are handled individually around the contiguous middle.
    fn read_run_batched(
        &self,
        file: &LamassuFile,
        plan: &SpanPlan,
        run_start: u64,
        keys: &[Key256],
        buf: &mut [u8],
    ) -> Result<()> {
        let bs = self.geometry.block_size();
        let run_last = run_start + keys.len() as u64 - 1;
        // Only the plan's edge blocks can be partially covered; they stage
        // through a pooled block each.
        let head_staged = !plan.is_full(run_start);
        let tail_staged = run_last != run_start && !plan.is_full(run_last);
        let mut head_stage = if head_staged {
            Some(self.blocks.take())
        } else {
            None
        };
        let mut tail_stage = if tail_staged {
            Some(self.blocks.take())
        } else {
            None
        };

        // The contiguous middle region of the caller's buffer.
        let mid_first = run_start + head_staged as u64;
        let mid_count = keys.len() - head_staged as usize - tail_staged as usize;
        let mid_range = if mid_count > 0 {
            let start = plan.buf_range(mid_first).start;
            start..start + mid_count * bs
        } else {
            0..0
        };
        let phys = self.geometry.locate_block(run_start).physical_offset;

        // One charged backend round trip for the whole run. The aligned case
        // reads straight into the caller's buffer; edges scatter through the
        // staging blocks.
        let n = if !head_staged && !tail_staged {
            let mid_slice = &mut buf[mid_range.clone()];
            self.io(|| self.store.read_into(&file.name, phys, mid_slice))?
        } else {
            let mid_slice = &mut buf[mid_range.clone()];
            iovec::with_scatter3(
                head_stage.as_deref_mut(),
                mid_slice,
                tail_stage.as_deref_mut(),
                |io_bufs| self.io(|| self.store.read_into_vectored(&file.name, phys, io_bufs)),
            )?
        };

        self.finish_run(
            file,
            plan,
            run_start,
            keys,
            buf,
            &mut head_stage,
            &mut tail_stage,
            mid_range,
            n,
        )
    }

    /// Post-transport half of a span-read run, shared between the blocking
    /// pipeline (called right after its vectored read returns) and the async
    /// pipeline (called as the run's completion lands): zero-fills blocks a
    /// short read could not produce, decrypts edges individually and the
    /// middle as one contiguous batch, runs the §2.5 self-check under full
    /// integrity, and copies the requested fragments of the staged edge
    /// blocks out.
    #[allow(clippy::too_many_arguments)]
    fn finish_run(
        &self,
        file: &LamassuFile,
        plan: &SpanPlan,
        run_start: u64,
        keys: &[Key256],
        buf: &mut [u8],
        head_stage: &mut Option<BlockBuf>,
        tail_stage: &mut Option<BlockBuf>,
        mid_range: Range<usize>,
        n: usize,
    ) -> Result<()> {
        let bs = self.geometry.block_size();
        let run_last = run_start + keys.len() as u64 - 1;
        let head_staged = head_stage.is_some();
        let tail_staged = tail_stage.is_some();
        let mid_first = run_start + head_staged as u64;
        let mid_count = keys.len() - head_staged as usize - tail_staged as usize;

        // Blocks the store could not fully produce (a key present but the
        // data never reached disk — only possible after an unrecovered
        // crash) read as holes, exactly like the per-block path. Staged
        // blocks that were not fully read never leak their (stale) bytes:
        // the copy-out below is gated on the same `read_blocks` count.
        let read_blocks = (n / bs).min(keys.len());
        for b in run_start + read_blocks as u64..=run_last {
            buf[plan.buf_range(b)].fill(0);
        }
        if read_blocks == 0 {
            return Ok(());
        }
        let head_read = head_staged; // read_blocks >= 1 covers the head
        let mid_read = read_blocks
            .saturating_sub(head_staged as usize)
            .min(mid_count);
        let tail_read = tail_staged && read_blocks == keys.len();

        // Decrypt: edges individually, the middle as one contiguous batch.
        if let Some(head) = head_stage.as_deref_mut() {
            if head_read {
                self.decrypt_in_place(head, &keys[0]);
            }
        }
        if mid_read > 0 {
            let mid_keys = &keys[head_staged as usize..head_staged as usize + mid_read];
            let mid_slice = &mut buf[mid_range.start..mid_range.start + mid_read * bs];
            self.profiler.time(Category::Decrypt, || {
                batch::decrypt_span(
                    &self.pool,
                    mid_keys,
                    &FIXED_IV,
                    mid_slice,
                    bs,
                    self.span.crypto,
                )
                .expect("data blocks are 16-byte aligned")
            });
        }
        if let Some(tail) = tail_stage.as_deref_mut() {
            if tail_read {
                self.decrypt_in_place(tail, &keys[keys.len() - 1]);
            }
        }

        // The §2.5 self-check, batched: re-derive every read block's key in
        // parallel into thread-local scratch and compare.
        if matches!(self.integrity, IntegrityMode::Full) {
            if let Some(head) = head_stage.as_deref() {
                if head_read && !self.key_matches_plaintext(head, &keys[0]) {
                    return Err(FsError::IntegrityViolation {
                        path: file.name.clone(),
                        logical_block: run_start,
                    });
                }
            }
            if mid_read > 0 {
                let mid_keys = &keys[head_staged as usize..head_staged as usize + mid_read];
                let mid_slice = &buf[mid_range.start..mid_range.start + mid_read * bs];
                let crypto = self.crypto.read();
                with_tls(&KEY_SCRATCH, |derived| {
                    derived.clear();
                    derived.resize(mid_read, [0u8; 32]);
                    self.profiler.time(Category::GetCeKey, || {
                        batch::derive_span_into(
                            &self.pool,
                            &crypto.kdf,
                            mid_slice,
                            bs,
                            derived,
                            self.span.crypto,
                        )
                        .expect("span length matches key count")
                    });
                    for (i, (got, expected)) in derived.iter().zip(mid_keys).enumerate() {
                        if got != expected {
                            return Err(FsError::IntegrityViolation {
                                path: file.name.clone(),
                                logical_block: mid_first + i as u64,
                            });
                        }
                    }
                    Ok(())
                })?;
            }
            if let Some(tail) = tail_stage.as_deref() {
                if tail_read && !self.key_matches_plaintext(tail, &keys[keys.len() - 1]) {
                    return Err(FsError::IntegrityViolation {
                        path: file.name.clone(),
                        logical_block: run_last,
                    });
                }
            }
        }

        // Copy the requested fragments of the staged edge blocks out.
        if head_read {
            let (in_block, take) = plan.span_of(run_start);
            let head = head_stage.as_deref().expect("head staged");
            buf[plan.buf_range(run_start)].copy_from_slice(&head[in_block..in_block + take]);
        }
        if tail_read {
            let (in_block, take) = plan.span_of(run_last);
            let tail = tail_stage.as_deref().expect("tail staged");
            buf[plan.buf_range(run_last)].copy_from_slice(&tail[in_block..in_block + take]);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Buffers the gather list `bufs` at `offset`, committing batches of `R`
    /// blocks as they accumulate (paper §2.4). Returns the number of bytes
    /// written. Staging blocks come from the mount pool; the sorted pending
    /// vector reuses its capacity, so steady aligned rewriting allocates
    /// nothing.
    pub(crate) fn write_vectored_range(
        &self,
        file: &mut LamassuFile,
        offset: u64,
        bufs: &[IoSlice<'_>],
    ) -> Result<usize> {
        let total = iovec::total_len(bufs);
        if total == 0 {
            return Ok(0);
        }
        let bs = self.geometry.block_size();
        let mut cursor = GatherCursor::new(bufs);
        for (block, in_block, take) in self.geometry.block_spans(offset, total) {
            match file.pending.binary_search_by_key(&block, |(b, _)| *b) {
                Ok(i) => {
                    // The block is already staged: overlay in place.
                    cursor.copy_to(&mut file.pending[i].1[in_block..in_block + take]);
                }
                Err(i) => {
                    let mut plain = self.blocks.take();
                    if in_block == 0 && take == bs {
                        cursor.copy_to(&mut plain);
                    } else {
                        // Read-modify-write of a partially covered block
                        // (fills with zeros when the block is a hole).
                        self.read_block_into(file, block, &mut plain, false)?;
                        cursor.copy_to(&mut plain[in_block..in_block + take]);
                    }
                    file.pending.insert(i, (block, plain));
                }
            }
        }
        let end = offset + total as u64;
        if end > file.logical_size {
            file.logical_size = end;
            file.size_dirty = true;
        }
        if file.pending.len() >= self.geometry.reserved_slots() {
            self.flush(file)?;
        }
        Ok(total)
    }

    /// Commits every buffered block and persists the logical size.
    ///
    /// Pending blocks are drained in order (already sorted by logical index,
    /// which is also segment order), staged contiguously into the reusable
    /// `commit_buf`, and handed to [`Engine::commit_chunk`] at most `R` at a
    /// time per segment. The pooled staging buffers return to the pool the
    /// moment their plaintext is copied out.
    pub(crate) fn flush(&self, file: &mut LamassuFile) -> Result<()> {
        let bs = self.geometry.block_size();
        let r = self.geometry.reserved_slots();
        let mut commit_buf = std::mem::take(&mut file.commit_buf);
        let mut ids = std::mem::take(&mut file.chunk_ids);
        let result = (|| {
            while !file.pending.is_empty() {
                let segment = self.geometry.locate_block(file.pending[0].0).segment;
                ids.clear();
                let mut k = 0;
                while k < file.pending.len() && k < r {
                    let block = file.pending[k].0;
                    if self.geometry.locate_block(block).segment != segment {
                        break;
                    }
                    ids.push(block);
                    k += 1;
                }
                if commit_buf.len() < k * bs {
                    commit_buf.resize(k * bs, 0);
                }
                for (i, (_, plain)) in file.pending[..k].iter().enumerate() {
                    commit_buf[i * bs..(i + 1) * bs].copy_from_slice(plain);
                }
                // The staged buffers return to the pool here; a commit error
                // below drops the affected blocks exactly like the previous
                // take-then-fail behaviour (recovery re-resolves them).
                file.pending.drain(..k);
                self.commit_chunk(file, segment, &ids, &mut commit_buf[..k * bs])?;
            }
            if file.size_dirty {
                let final_segment = self.final_segment(file);
                let size = file.logical_size;
                self.update_meta(file, final_segment, |mb| {
                    mb.logical_size = size;
                    Ok(())
                })?;
                file.size_dirty = false;
            }
            Ok(())
        })();
        file.commit_buf = commit_buf;
        file.chunk_ids = ids;
        result
    }

    /// Index of the segment holding the authoritative logical size.
    fn final_segment(&self, file: &LamassuFile) -> u64 {
        self.geometry.segments_for_len(file.logical_size).max(1) - 1
    }

    /// The multiphase commit of §2.4 for up to `R` dirty blocks of one
    /// segment, staged contiguously (in block order) in `data`:
    ///
    /// 1. park the previous keys in the transient area, install the new keys
    ///    (derived as one contiguous batch under [`SpanPolicy::Batched`]),
    ///    mark the segment mid-update, write the metadata block — updated
    ///    in place in the per-file cache and sealed into a pooled block;
    /// 2. encrypt the staged span in place (one parallel batch) and write
    ///    every run of adjacent blocks with a single backend write;
    /// 3. clear the mid-update mark and the transient area, write the
    ///    metadata block again.
    fn commit_chunk(
        &self,
        file: &mut LamassuFile,
        segment: u64,
        blocks: &[u64],
        data: &mut [u8],
    ) -> Result<()> {
        let bs = self.geometry.block_size();
        debug_assert!(blocks.len() <= self.geometry.reserved_slots());
        debug_assert_eq!(data.len(), blocks.len() * bs);
        let is_final = segment == self.final_segment(file);
        let logical_size = file.logical_size;

        with_tls(&KEY_SCRATCH, |new_keys| {
            // Derive the convergent keys for the whole chunk (Equation 1).
            new_keys.clear();
            new_keys.resize(blocks.len(), [0u8; 32]);
            match self.span.policy {
                SpanPolicy::Batched => {
                    let crypto = self.crypto.read();
                    self.profiler.time(Category::GetCeKey, || {
                        batch::derive_span_into(
                            &self.pool,
                            &crypto.kdf,
                            data,
                            bs,
                            new_keys,
                            self.span.crypto,
                        )
                        .expect("chunk is whole blocks")
                    });
                }
                SpanPolicy::PerBlock => {
                    for (key, plain) in new_keys.iter_mut().zip(data.chunks_exact(bs)) {
                        *key = self.derive_key(plain);
                    }
                }
            }

            // Phase 1: stage old + new keys and flag the segment.
            self.update_meta(file, segment, |mb| {
                for (block, key) in blocks.iter().zip(new_keys.iter()) {
                    let slot = self.geometry.locate_block(*block).slot;
                    let old_key = mb.key(slot).copied().unwrap_or([0u8; 32]);
                    mb.push_transient(
                        &self.geometry,
                        TransientEntry {
                            slot: slot as u16,
                            old_key,
                        },
                    )?;
                    mb.set_key(slot, *key)?;
                }
                mb.flags.set_mid_update(true);
                if is_final {
                    mb.logical_size = logical_size;
                }
                Ok(())
            })?;

            // Phase 2: encrypt the staged span in place and write the data
            // blocks, one backend write per run of adjacent blocks (`blocks`
            // is sorted, and consecutive logical blocks of one segment are
            // physically contiguous — so each run is one contiguous slice of
            // the staging buffer).
            match self.span.policy {
                SpanPolicy::Batched => {
                    self.profiler.time(Category::Encrypt, || {
                        batch::encrypt_span(
                            &self.pool,
                            new_keys,
                            &FIXED_IV,
                            data,
                            bs,
                            self.span.crypto,
                        )
                        .expect("chunk is whole blocks")
                    });
                }
                SpanPolicy::PerBlock => {
                    for (key, plain) in new_keys.iter().zip(data.chunks_exact_mut(bs)) {
                        self.encrypt_in_place(plain, key);
                    }
                }
            }
            if matches!(
                (self.span.policy, self.span.io),
                (SpanPolicy::Batched, IoMode::Async)
            ) {
                // The async pipeline submits every run back to back and waits
                // once, so the chunk's data writes overlap on the channel's
                // queue-depth lanes instead of paying one serial round trip
                // per run.
                self.write_chunk_runs_async(file, blocks, data)?;
            } else {
                let mut i = 0;
                while i < blocks.len() {
                    let mut j = i + 1;
                    while j < blocks.len() && blocks[j] == blocks[j - 1] + 1 {
                        j += 1;
                    }
                    let offset = self.geometry.locate_block(blocks[i]).physical_offset;
                    match self.span.policy {
                        SpanPolicy::Batched => {
                            let run = &data[i * bs..j * bs];
                            self.io(|| self.store.write_at(&file.name, offset, run))?;
                        }
                        SpanPolicy::PerBlock => {
                            // The oracle pipeline writes one block per backend
                            // operation, as the original prototype did.
                            for (k, block) in data[i * bs..j * bs].chunks_exact(bs).enumerate() {
                                let off = self.geometry.locate_block(blocks[i + k]).physical_offset;
                                self.io(|| self.store.write_at(&file.name, off, block))?;
                            }
                        }
                    }
                    i = j;
                }
            }

            // Phase 3: the segment is consistent again.
            self.update_meta(file, segment, |mb| {
                mb.clear_transient();
                mb.flags.set_mid_update(false);
                Ok(())
            })
        })?;

        if is_final {
            file.size_dirty = false;
        }
        Ok(())
    }

    /// Commit phase 2 under [`IoMode::Async`]: submits one vectored write per
    /// run of adjacent blocks, then drains every completion with one
    /// [`ObjectStore::wait_completions`] barrier. Write results — including
    /// injected faults — surface only at the barrier; on multiple failures
    /// the earliest submission's error wins, mirroring the blocking loop.
    fn write_chunk_runs_async(
        &self,
        file: &LamassuFile,
        blocks: &[u64],
        data: &[u8],
    ) -> Result<()> {
        let bs = self.geometry.block_size();
        with_tls(&ASYNC_SCRATCH, |scratch| {
            let AsyncScratch {
                queue: q,
                completions,
                ..
            } = scratch;
            q.reset();
            completions.clear();

            let mut tickets_in_order: u64 = 0;
            let mut i = 0;
            while i < blocks.len() {
                let mut j = i + 1;
                while j < blocks.len() && blocks[j] == blocks[j - 1] + 1 {
                    j += 1;
                }
                let offset = self.geometry.locate_block(blocks[i]).physical_offset;
                let run = &data[i * bs..j * bs];
                self.io_meter(Category::Io, || {
                    self.store
                        .submit_write_vectored(q, &file.name, offset, &[IoSlice::new(run)])
                });
                tickets_in_order += 1;
                i = j;
            }
            self.profiler.ops_submitted(tickets_in_order);

            self.io_meter(Category::Queue, || {
                self.store.wait_completions(q, completions)
            });
            self.profiler.ops_completed(completions.len() as u64);

            // Tickets are issued with monotonically increasing sequence
            // numbers, so min-by-ticket is the earliest submission.
            let first_err = completions
                .iter()
                .filter(|c| c.result.is_err())
                .min_by_key(|c| c.ticket)
                .map(|c| c.result.clone().unwrap_err());
            completions.clear();
            match first_err {
                Some(e) => Err(FsError::from(e)),
                None => Ok(()),
            }
        })
    }

    // ------------------------------------------------------------------
    // Truncate
    // ------------------------------------------------------------------

    /// Truncates (or extends) the file to `new_size` logical bytes.
    pub(crate) fn truncate(&self, file: &mut LamassuFile, new_size: u64) -> Result<()> {
        self.flush(file)?;
        let old_size = file.logical_size;
        file.logical_size = new_size;
        file.size_dirty = true;

        if new_size < old_size {
            let bs = self.geometry.block_size() as u64;
            // Zero the tail of the new final block so stale bytes cannot be
            // resurrected by a later extension.
            if !new_size.is_multiple_of(bs) {
                let last_block = new_size / bs;
                let mut plain = self.blocks.take();
                if self.read_block_into(file, last_block, &mut plain, false)? {
                    plain[(new_size % bs) as usize..].fill(0);
                    let segment = self.geometry.locate_block(last_block).segment;
                    self.commit_chunk(file, segment, &[last_block], &mut plain)?;
                }
            }
            // Drop keys for blocks past the new end.
            let first_dropped = self.geometry.data_blocks_for_len(new_size);
            let last_old = self.geometry.data_blocks_for_len(old_size);
            let new_segments = self.geometry.segments_for_len(new_size);
            let mut block = first_dropped;
            while block < last_old {
                let loc = self.geometry.locate_block(block);
                if loc.segment >= new_segments {
                    // The rest of the blocks live in segments that disappear
                    // with the physical truncate.
                    break;
                }
                // Clear every dropped slot of this segment with one metadata
                // update.
                let seg_end_block =
                    (loc.segment + 1) * self.geometry.keys_per_metadata_block() as u64;
                let clear_to = seg_end_block.min(last_old);
                self.update_meta(file, loc.segment, |mb| {
                    for b in block..clear_to {
                        let slot = (b % self.geometry.keys_per_metadata_block() as u64) as usize;
                        mb.clear_key(slot)?;
                    }
                    Ok(())
                })?;
                block = clear_to;
            }
            // Shrink the physical object and drop stale cache entries.
            let physical = self.geometry.encrypted_size(new_size);
            self.io(|| self.store.truncate(&file.name, physical))?;
            file.meta_cache.lock().retain(|seg, _| *seg < new_segments);
        }

        let final_segment = self.final_segment(file);
        self.update_meta(file, final_segment, |mb| {
            mb.logical_size = new_size;
            Ok(())
        })?;
        file.size_dirty = false;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Recovery, verification, re-keying
    // ------------------------------------------------------------------

    /// Scans every segment for the mid-update flag and repairs interrupted
    /// commits using the transient keys (paper §2.4).
    pub(crate) fn recover(&self, file: &mut LamassuFile) -> Result<RecoveryReport> {
        file.meta_cache.lock().clear();
        file.pending.clear();
        let mut report = RecoveryReport::default();
        let last_segment = self.last_physical_segment(&file.name)?;
        let physical = self.io(|| self.store.len(&file.name))?;
        let bs = self.geometry.block_size();

        for segment in 0..=last_segment {
            let mut mb = self.read_meta(file, segment)?;
            report.segments_scanned += 1;
            if !mb.flags.is_mid_update() {
                continue;
            }
            for entry in mb.transient().to_vec() {
                let slot = entry.slot as usize;
                let logical_block =
                    segment * self.geometry.keys_per_metadata_block() as u64 + slot as u64;
                let loc = self.geometry.locate_block(logical_block);
                let new_key = mb.key(slot).copied();
                let had_old = entry.old_key != [0u8; 32];

                let on_disk = if loc.physical_offset + bs as u64 <= physical {
                    Some(self.io(|| self.store.read_at(&file.name, loc.physical_offset, bs))?)
                } else {
                    None
                };

                let resolved = match (&on_disk, new_key) {
                    (Some(ct), Some(nk)) => {
                        let plain = self.decrypt_block(ct, &nk);
                        if self.key_matches_plaintext(&plain, &nk) {
                            report.blocks_kept_new += 1;
                            true
                        } else {
                            false
                        }
                    }
                    _ => false,
                };
                if resolved {
                    continue;
                }
                if had_old {
                    // Either the data block still holds the old contents, or
                    // it never existed; in both cases the old key is the
                    // consistent one.
                    let consistent = match &on_disk {
                        Some(ct) => {
                            let plain = self.decrypt_block(ct, &entry.old_key);
                            self.key_matches_plaintext(&plain, &entry.old_key)
                        }
                        None => false,
                    };
                    if consistent {
                        mb.set_key(slot, entry.old_key)?;
                        report.blocks_restored_old += 1;
                    } else {
                        return Err(FsError::Unrecoverable {
                            path: file.name.clone(),
                            segment,
                        });
                    }
                } else {
                    // A brand-new block whose data never reached disk.
                    mb.clear_key(slot)?;
                    report.blocks_cleared += 1;
                }
            }
            mb.clear_transient();
            mb.flags.set_mid_update(false);
            self.write_meta(file, segment, mb)?;
            report.segments_repaired += 1;
        }

        // Reload the authoritative size after repairs.
        let last = self.last_physical_segment(&file.name)?;
        file.logical_size = self.with_meta(file, last, |mb| mb.logical_size)?;
        Ok(report)
    }

    /// Verifies every metadata and data block of the file (paper §2.5),
    /// collecting failures rather than stopping at the first one.
    pub(crate) fn verify(&self, file: &mut LamassuFile) -> Result<VerifyReport> {
        self.flush(file)?;
        file.meta_cache.lock().clear();
        let mut report = VerifyReport::default();
        let data_blocks = self.geometry.data_blocks_for_len(file.logical_size);
        let segments = self.geometry.segments_for_len(file.logical_size);

        for segment in 0..segments {
            match self.with_meta(file, segment, |mb| mb.flags.is_mid_update()) {
                Ok(mid_update) => {
                    report.metadata_blocks_checked += 1;
                    if mid_update {
                        report.mid_update_segments += 1;
                    }
                }
                Err(FsError::Metadata(_)) => {
                    report.corrupt_metadata_blocks.push(segment);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }

        let mut buf = self.blocks.take();
        for block in 0..data_blocks {
            match self.read_block_into(file, block, &mut buf, true) {
                Ok(_) => report.data_blocks_checked += 1,
                Err(FsError::IntegrityViolation { logical_block, .. }) => {
                    report.data_blocks_checked += 1;
                    report.corrupt_data_blocks.push(logical_block);
                }
                Err(FsError::Metadata(_)) => {
                    // Already counted above per segment; skip its blocks.
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Re-seals every metadata block under `new_keys.outer` (the paper's
    /// partial re-keying, §2.2). Returns the number of metadata blocks
    /// rewritten.
    pub(crate) fn rekey_outer(&self, file: &mut LamassuFile, new_keys: &ZoneKeys) -> Result<u64> {
        self.flush(file)?;
        {
            let crypto = self.crypto.read();
            assert_eq!(
                crypto.keys.inner, new_keys.inner,
                "outer re-keying must not change the inner key; use a full re-encryption instead"
            );
        }
        let new_gcm = Aes256Gcm::with_backend(&new_keys.outer, self.span.crypto);
        let last_segment = self.last_physical_segment(&file.name)?;
        let mut rewritten = 0;
        let mut sealed = self.blocks.take();
        for segment in 0..=last_segment {
            let mb = self.read_meta(file, segment)?;
            let mut nonce = [0u8; 12];
            rand::thread_rng().fill_bytes(&mut nonce);
            self.profiler.time(Category::Encrypt, || {
                mb.seal_into(
                    &self.geometry,
                    &new_gcm,
                    &nonce,
                    &Self::aad(segment),
                    &mut sealed,
                )
            });
            let offset = self.geometry.metadata_block_offset(segment);
            self.io(|| self.store.write_at(&file.name, offset, &sealed))?;
            rewritten += 1;
        }
        Ok(rewritten)
    }
}
