//! PlainFS: the unencrypted pass-through baseline.
//!
//! The paper's *PlainFS* is "a simple pass-through front end for the relevant
//! Linux system calls associated with FUSE operations" (§4 setup). It exists
//! so that the encrypted systems can be compared against a baseline that
//! still pays the shim overhead but does no cryptography, and so that the
//! storage-efficiency experiments have an upper bound: plaintext blocks
//! deduplicate perfectly.
//!
//! Being the thinnest shim, PlainFS is where the fd-centric API pays off most
//! visibly: `read_into`/`write_vectored` forward straight from the descriptor
//! entry to the store with no allocation and no path materialization.
//!
//! PlainFS keeps **no per-file state at all**, so it is trivially the most
//! concurrent shim: reads and writes alike go straight to the (internally
//! sharded) store with nothing but the descriptor table's read lock taken —
//! the upper bound the encrypted shims' shared-read locking is measured
//! against in the `scaling` experiment.

use crate::asyncio;
use crate::fs::{FileAttr, FileSystem, OpenFlags};
use crate::handles::HandleTable;
use crate::iovec;
use crate::profiler::{Category, Profiler};
use crate::span::IoMode;
use crate::{Fd, FsError, Result};
use lamassu_storage::ObjectStore;
use std::io::{IoSlice, IoSliceMut};
use std::sync::Arc;
use std::time::Instant;

/// The unencrypted pass-through shim.
pub struct PlainFs {
    store: Arc<dyn ObjectStore>,
    io_mode: IoMode,
    handles: HandleTable<()>,
    profiler: Arc<Profiler>,
}

impl PlainFs {
    /// Mounts a PlainFS over `store` with the default (async) I/O mode.
    pub fn new(store: Arc<dyn ObjectStore>) -> Self {
        Self::with_io(store, IoMode::default())
    }

    /// Mounts a PlainFS with an explicit I/O mode. Data reads and writes
    /// under [`IoMode::Async`] go through the store's submission queue (one
    /// operation per call, so PlainFS stays the flat single-round-trip
    /// baseline at every queue depth); [`IoMode::Blocking`] keeps the direct
    /// store calls as the differential oracle.
    pub fn with_io(store: Arc<dyn ObjectStore>, io_mode: IoMode) -> Self {
        PlainFs {
            store,
            io_mode,
            handles: HandleTable::new(),
            profiler: Profiler::new(),
        }
    }

    /// The latency profiler for this mount.
    pub fn profiler(&self) -> Arc<Profiler> {
        self.profiler.clone()
    }

    /// Runs a backing-store call, charging real plus virtual time to `Io`.
    fn io<T>(&self, f: impl FnOnce() -> lamassu_storage::Result<T>) -> Result<T> {
        let virt_before = self.store.io_time();
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed() + self.store.io_time().saturating_sub(virt_before);
        self.profiler.add(Category::Io, elapsed);
        out.map_err(FsError::from)
    }
}

impl FileSystem for PlainFs {
    fn create(&self, path: &str) -> Result<Fd> {
        self.io(|| self.store.create(path)).map_err(|e| match e {
            FsError::Storage(lamassu_storage::StorageError::AlreadyExists { name }) => {
                FsError::AlreadyExists { path: name }
            }
            other => other,
        })?;
        Ok(self.handles.open(path, ()))
    }

    fn open(&self, path: &str, flags: OpenFlags) -> Result<Fd> {
        if !self.store.exists(path) {
            return Err(FsError::NotFound {
                path: path.to_string(),
            });
        }
        if flags.truncate {
            self.io(|| self.store.truncate(path, 0))?;
        }
        Ok(self.handles.open(path, ()))
    }

    fn close(&self, fd: Fd) -> Result<()> {
        self.handles.close(fd).map(|_| ())
    }

    fn read_into(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let entry = self.handles.get(fd)?;
        let path = entry.path();
        match self.io_mode {
            IoMode::Async => asyncio::roundtrip_read(
                &self.profiler,
                &*self.store,
                &path,
                offset,
                &mut [IoSliceMut::new(buf)],
            )
            .map_err(FsError::from),
            IoMode::Blocking => self.io(|| self.store.read_into(&path, offset, buf)),
        }
    }

    fn write_vectored(&self, fd: Fd, offset: u64, bufs: &[IoSlice<'_>]) -> Result<usize> {
        let entry = self.handles.get(fd)?;
        let path = entry.path();
        match self.io_mode {
            IoMode::Async => {
                asyncio::roundtrip_write(&self.profiler, &*self.store, &path, offset, bufs)
                    .map_err(FsError::from)?;
            }
            IoMode::Blocking => {
                self.io(|| self.store.write_at_vectored(&path, offset, bufs))?;
            }
        }
        Ok(iovec::total_len(bufs))
    }

    fn truncate(&self, fd: Fd, size: u64) -> Result<()> {
        let entry = self.handles.get(fd)?;
        let path = entry.path();
        self.io(|| self.store.truncate(&path, size))
    }

    fn fsync(&self, fd: Fd) -> Result<()> {
        let entry = self.handles.get(fd)?;
        let path = entry.path();
        self.io(|| self.store.flush(&path))
    }

    fn len(&self, fd: Fd) -> Result<u64> {
        let entry = self.handles.get(fd)?;
        let path = entry.path();
        self.io(|| self.store.len(&path))
    }

    fn stat(&self, path: &str) -> Result<FileAttr> {
        if !self.store.exists(path) {
            return Err(FsError::NotFound {
                path: path.to_string(),
            });
        }
        let size = self.io(|| self.store.len(path))?;
        Ok(FileAttr {
            logical_size: size,
            physical_size: size,
        })
    }

    fn remove(&self, path: &str) -> Result<()> {
        self.io(|| self.store.remove(path)).map_err(|e| match e {
            FsError::Storage(lamassu_storage::StorageError::NotFound { name }) => {
                FsError::NotFound { path: name }
            }
            other => other,
        })?;
        self.handles.invalidate(path);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.io(|| self.store.rename(from, to))?;
        self.handles.retarget(from, to);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.store.list())
    }

    fn kind(&self) -> &'static str {
        "PlainFS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamassu_storage::{DedupStore, StorageProfile};

    fn mount() -> PlainFs {
        PlainFs::new(Arc::new(DedupStore::new(4096, StorageProfile::instant())))
    }

    #[test]
    fn create_write_read_round_trip() {
        let fs = mount();
        let fd = fs.create("/x").unwrap();
        fs.write(fd, 0, b"hello world").unwrap();
        assert_eq!(fs.read(fd, 0, 11).unwrap(), b"hello world");
        assert_eq!(fs.read(fd, 6, 100).unwrap(), b"world");
        assert_eq!(fs.len(fd).unwrap(), 11);
        fs.close(fd).unwrap();
    }

    #[test]
    fn read_into_reuses_caller_buffer() {
        let fs = mount();
        let fd = fs.create("/x").unwrap();
        fs.write(fd, 0, b"abcdef").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read_into(fd, 1, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"bcde");
        // Short read at end of file.
        assert_eq!(fs.read_into(fd, 4, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
    }

    #[test]
    fn write_vectored_concatenates_slices() {
        let fs = mount();
        let fd = fs.create("/x").unwrap();
        let n = fs
            .write_vectored(fd, 0, &[IoSlice::new(b"head-"), IoSlice::new(b"tail")])
            .unwrap();
        assert_eq!(n, 9);
        assert_eq!(fs.read(fd, 0, 9).unwrap(), b"head-tail");
    }

    #[test]
    fn read_past_eof_is_empty() {
        let fs = mount();
        let fd = fs.create("/x").unwrap();
        fs.write(fd, 0, b"abc").unwrap();
        assert!(fs.read(fd, 10, 5).unwrap().is_empty());
    }

    #[test]
    fn read_with_generous_len_is_clamped() {
        // "Read the whole file" with a huge upper bound must allocate only
        // the file's size, not `len` bytes.
        let fs = mount();
        let fd = fs.create("/x").unwrap();
        fs.write(fd, 0, b"small").unwrap();
        let back = fs.read(fd, 0, usize::MAX / 2).unwrap();
        assert_eq!(back, b"small");
        assert!(back.capacity() < 4096, "allocation was not clamped");
    }

    #[test]
    fn open_missing_fails() {
        let fs = mount();
        assert!(matches!(
            fs.open("/nope", OpenFlags::default()),
            Err(FsError::NotFound { .. })
        ));
    }

    #[test]
    fn create_existing_fails() {
        let fs = mount();
        fs.create("/x").unwrap();
        assert!(matches!(
            fs.create("/x"),
            Err(FsError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn open_truncate_clears_content() {
        let fs = mount();
        let fd = fs.create("/x").unwrap();
        fs.write(fd, 0, b"data").unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/x", OpenFlags { truncate: true }).unwrap();
        assert_eq!(fs.len(fd).unwrap(), 0);
    }

    #[test]
    fn stat_remove_rename_list() {
        let fs = mount();
        let fd = fs.create("/a").unwrap();
        fs.write(fd, 0, &[0u8; 100]).unwrap();
        let attr = fs.stat("/a").unwrap();
        assert_eq!(attr.logical_size, 100);
        fs.rename("/a", "/b").unwrap();
        assert!(fs.stat("/a").is_err());
        assert_eq!(fs.list().unwrap(), vec!["/b".to_string()]);
        // The old fd follows the rename.
        assert_eq!(fs.len(fd).unwrap(), 100);
        fs.remove("/b").unwrap();
        assert!(matches!(fs.len(fd), Err(FsError::BadFd { .. })));
        assert!(matches!(fs.remove("/b"), Err(FsError::NotFound { .. })));
    }

    #[test]
    fn bad_fd_rejected() {
        let fs = mount();
        assert!(matches!(fs.read(99, 0, 1), Err(FsError::BadFd { fd: 99 })));
        assert!(fs.write(99, 0, b"x").is_err());
        let mut buf = [0u8; 1];
        assert!(fs.read_into(99, 0, &mut buf).is_err());
        assert!(fs.close(99).is_err());
    }

    #[test]
    fn plaintext_deduplicates_perfectly() {
        let store = Arc::new(DedupStore::new(4096, StorageProfile::instant()));
        let fs = PlainFs::new(store.clone());
        let fd = fs.create("/a").unwrap();
        fs.write(fd, 0, &vec![7u8; 4096 * 4]).unwrap();
        let fd2 = fs.create("/b").unwrap();
        fs.write(fd2, 0, &vec![7u8; 4096 * 4]).unwrap();
        let report = store.run_dedup();
        assert_eq!(report.total_blocks, 8);
        assert_eq!(report.unique_blocks, 1);
    }
}
