//! The span planner: shared machinery of the per-span data path.
//!
//! Every shim turns an arbitrary byte range into whole-block operations. The
//! per-block pipeline of the original prototype pays one backend round trip
//! and one serial crypto pass *per block*; the span pipeline instead plans
//! the whole range once (a pure-arithmetic [`SpanPlan`], charged to the
//! [`Category::Plan`](crate::profiler::Category::Plan) latency category),
//! reads/writes maximal runs of physically contiguous blocks with the
//! vectored store primitives, and hands each run to the batch crypto APIs in
//! one call.
//!
//! # Policy and the worker knob
//!
//! [`SpanConfig`] selects between the two pipelines and sizes the per-mount
//! crypto worker pool:
//!
//! * [`SpanPolicy::Batched`] (the default) — whole-span backend I/O plus
//!   parallel batch crypto;
//! * [`SpanPolicy::PerBlock`] — the original one-block-at-a-time path, kept
//!   as a verification oracle (the property tests replay every workload
//!   through both pipelines and require byte-identical results) and as a
//!   fallback for pathological geometries.
//!
//! `workers == 0` auto-sizes the pool to
//! `min(`[`DEFAULT_MAX_WORKERS`](lamassu_crypto::pool::DEFAULT_MAX_WORKERS)`,
//! available_parallelism)`; the CLI exposes the knob as `--workers`.

use lamassu_crypto::pool::CryptoPool;
use lamassu_crypto::CryptoBackend;

/// Which data-path pipeline a mount uses (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanPolicy {
    /// Whole-span backend I/O + parallel batch crypto (the default).
    #[default]
    Batched,
    /// The original per-block pipeline (verification oracle / fallback).
    PerBlock,
}

/// How the batched pipeline talks to the backend (ignored by
/// [`SpanPolicy::PerBlock`], which is inherently blocking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Submission/completion pipelining (the default): all of a span's runs
    /// are submitted up front, and each run's crypto starts as its
    /// completion lands while later runs are still in flight, so a single
    /// client thread keeps up to `StorageProfile.queue_depth` backend
    /// operations overlapped.
    #[default]
    Async,
    /// One blocking vectored call per run — the differential oracle for the
    /// async pipeline, mirroring how PerBlock backs Batched.
    Blocking,
}

/// Client-visible resilience knobs of one mount. Plain data only:
/// `lamassu-core` does not depend on `lamassu-resilience` — mount builders
/// (the CLI, the bench harness) translate these knobs into a
/// `ResilientStore` wrapped around the backend before handing it to
/// [`LamassuFs`](crate::LamassuFs). The CLI exposes them as
/// `--resilience retries[:hedge-ms]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceConfig {
    /// Transient-failure retries allowed per logical operation (`0`
    /// disables the retry wrapper entirely; attempts = retries + 1).
    pub retries: u32,
    /// Hedged-read latency floor in milliseconds: `Some(ms)` enables
    /// quantile-triggered read hedging with this floor, `None` leaves
    /// hedging off (the zero-allocation read path).
    pub hedge_ms: Option<u32>,
}

impl ResilienceConfig {
    /// True when any resilience machinery should be mounted at all.
    pub fn enabled(&self) -> bool {
        self.retries > 0 || self.hedge_ms.is_some()
    }
}

/// Span-pipeline configuration of one mount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanConfig {
    /// Which pipeline to run.
    pub policy: SpanPolicy,
    /// How the batched pipeline issues backend I/O.
    pub io: IoMode,
    /// Crypto worker-pool size; `0` auto-sizes (see the module docs).
    pub workers: usize,
    /// Capacity of the mount's [`BlockPool`](crate::pool::BlockPool) in
    /// blocks: `None` auto-sizes to the mount's needs, `Some(0)` disables
    /// buffer recycling entirely (every staging buffer is allocated fresh —
    /// the baseline the `hot_path` bench measures the pool against), any
    /// other value bounds the idle buffers kept (rounded up per shard; see
    /// [`BlockPool::new`](crate::pool::BlockPool::new)).
    pub pool_blocks: Option<usize>,
    /// Which AES/SHA kernel family the mount's span crypto runs on:
    /// the wide constant-time fixsliced kernels (the default) or the
    /// T-table oracle. The CLI exposes the knob as `--crypto`.
    pub crypto: CryptoBackend,
    /// Retry/hedge knobs the mount builder applies to the backend (see
    /// [`ResilienceConfig`]); the default disables both.
    pub resilience: ResilienceConfig,
}

impl SpanConfig {
    /// The batched pipeline with an auto-sized pool (the default).
    pub fn batched() -> Self {
        SpanConfig::default()
    }

    /// The per-block fallback pipeline.
    pub fn per_block() -> Self {
        SpanConfig {
            policy: SpanPolicy::PerBlock,
            ..SpanConfig::default()
        }
    }

    /// The batched pipeline with blocking vectored I/O (the async engine's
    /// differential oracle).
    pub fn blocking() -> Self {
        SpanConfig {
            io: IoMode::Blocking,
            ..SpanConfig::default()
        }
    }

    /// Returns a copy with the given I/O mode.
    pub fn with_io(mut self, io: IoMode) -> Self {
        self.io = io;
        self
    }

    /// Returns a copy with an explicit block-pool capacity (see
    /// [`SpanConfig::pool_blocks`]).
    pub fn with_pool_blocks(mut self, blocks: usize) -> Self {
        self.pool_blocks = Some(blocks);
        self
    }

    /// Returns a copy with an explicit crypto backend (see
    /// [`SpanConfig::crypto`]).
    pub fn with_crypto(mut self, crypto: CryptoBackend) -> Self {
        self.crypto = crypto;
        self
    }

    /// Returns a copy with the given resilience knobs (see
    /// [`ResilienceConfig`]).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Builds the mount's shared crypto pool.
    pub(crate) fn pool(&self) -> CryptoPool {
        CryptoPool::new(self.workers)
    }

    /// Resolves the block-pool capacity, defaulting to `auto` blocks.
    pub(crate) fn pool_capacity(&self, auto: usize) -> usize {
        self.pool_blocks.unwrap_or(auto)
    }
}

/// One block-granular view of a planned byte range.
///
/// Only the first and last block of a plan can be partially covered; every
/// interior block is full. The plan is pure arithmetic — no I/O, no
/// allocation — and the shims charge its (tiny) cost to the `Plan` profiler
/// category so the Figure 9 breakdown separates planning from crypto and
/// transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanPlan {
    /// Byte offset the plan starts at.
    pub offset: u64,
    /// Number of bytes planned (never zero).
    pub len: usize,
    /// First block index touched.
    pub first_block: u64,
    /// Last block index touched (inclusive).
    pub last_block: u64,
    /// The block size the plan was computed for.
    pub block_size: usize,
}

impl SpanPlan {
    /// Number of blocks the range touches.
    pub fn block_count(&self) -> u64 {
        self.last_block - self.first_block + 1
    }

    /// `(offset_in_block, take)` of the range's intersection with `block`.
    pub fn span_of(&self, block: u64) -> (usize, usize) {
        let bs = self.block_size as u64;
        let blk_start = block * bs;
        let start = self.offset.max(blk_start);
        let end = (self.offset + self.len as u64).min(blk_start + bs);
        ((start - blk_start) as usize, (end - start) as usize)
    }

    /// Byte range of `block`'s intersection within the caller's buffer.
    pub fn buf_range(&self, block: u64) -> std::ops::Range<usize> {
        let bs = self.block_size as u64;
        let blk_start = block * bs;
        let start = self.offset.max(blk_start);
        let end = (self.offset + self.len as u64).min(blk_start + bs);
        (start - self.offset) as usize..(end - self.offset) as usize
    }

    /// True if the range covers `block` entirely.
    pub fn is_full(&self, block: u64) -> bool {
        let (in_block, take) = self.span_of(block);
        in_block == 0 && take == self.block_size
    }
}

/// Plans byte ranges onto block spans for one mount's block size.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanPlanner {
    block_size: usize,
}

impl SpanPlanner {
    pub(crate) fn new(block_size: usize) -> Self {
        debug_assert!(block_size > 0);
        SpanPlanner { block_size }
    }

    /// Plans the non-empty byte range `[offset, offset + len)`.
    pub(crate) fn plan(&self, offset: u64, len: usize) -> SpanPlan {
        debug_assert!(len > 0, "callers handle empty ranges before planning");
        let bs = self.block_size as u64;
        SpanPlan {
            offset,
            len,
            first_block: offset / bs,
            last_block: (offset + len as u64 - 1) / bs,
            block_size: self.block_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_a_misaligned_range() {
        let plan = SpanPlanner::new(4096).plan(4000, 5000);
        assert_eq!(plan.first_block, 0);
        assert_eq!(plan.last_block, 2);
        assert_eq!(plan.block_count(), 3);
        assert_eq!(plan.span_of(0), (4000, 96));
        assert_eq!(plan.span_of(1), (0, 4096));
        assert_eq!(plan.span_of(2), (0, 808));
        assert!(!plan.is_full(0));
        assert!(plan.is_full(1));
        assert!(!plan.is_full(2));
        assert_eq!(plan.buf_range(0), 0..96);
        assert_eq!(plan.buf_range(1), 96..96 + 4096);
        assert_eq!(plan.buf_range(2), 96 + 4096..5000);
    }

    #[test]
    fn aligned_single_block_is_full() {
        let plan = SpanPlanner::new(4096).plan(8192, 4096);
        assert_eq!(plan.first_block, 2);
        assert_eq!(plan.last_block, 2);
        assert!(plan.is_full(2));
        assert_eq!(plan.buf_range(2), 0..4096);
    }

    #[test]
    fn sub_block_range_is_one_partial_block() {
        let plan = SpanPlanner::new(4096).plan(100, 50);
        assert_eq!(plan.block_count(), 1);
        assert_eq!(plan.span_of(0), (100, 50));
        assert!(!plan.is_full(0));
    }

    #[test]
    fn config_defaults_to_batched() {
        assert_eq!(SpanConfig::default().policy, SpanPolicy::Batched);
        assert_eq!(SpanConfig::per_block().policy, SpanPolicy::PerBlock);
        assert!(SpanConfig::batched().pool().workers() >= 1);
    }
}
