//! Single-submission round-trip helpers of the completion-based I/O model.
//!
//! The pipelines with a real overlap opportunity — LamassuFS span runs,
//! EncFS span chunks — manage their own submission batches. The thin shims'
//! operations are one backend call each, so their [`IoMode::Async`] paths
//! route through these helpers instead: submit the operation, then
//! immediately drain its completion. A single submission still exercises the
//! whole submit/complete contract (deferred faults, completion reordering,
//! the queue-depth lanes) while costing exactly one round trip — which is
//! what keeps PlainFS flat across queue depths in the `qdepth` experiment.
//!
//! [`IoMode::Async`]: crate::span::IoMode::Async

use crate::profiler::{Category, Profiler};
use lamassu_storage::{Completion, ObjectStore, SubmitQueue, SubmitTicket};
use std::cell::RefCell;
use std::io::{IoSlice, IoSliceMut};
use std::time::Instant;

thread_local! {
    /// The thread's single-shot submission queue and completion staging,
    /// reused so the warm round-trip path allocates nothing.
    static ROUNDTRIP_SCRATCH: RefCell<(SubmitQueue, Vec<Completion>)> =
        RefCell::new((SubmitQueue::new(), Vec::new()));
}

/// Meters one store call — wall time plus the virtual transport time it
/// advanced — into `cat`. Submissions belong in [`Category::Io`] (the
/// makespan growth the operation adds to its channel), poll/wait calls in
/// [`Category::Queue`] (time spent blocked on completions).
pub(crate) fn meter<T>(
    profiler: &Profiler,
    store: &dyn ObjectStore,
    cat: Category,
    f: impl FnOnce() -> T,
) -> T {
    let virt_before = store.io_time();
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed() + store.io_time().saturating_sub(virt_before);
    profiler.add(cat, elapsed);
    out
}

/// One submitted vectored read, drained to completion before returning.
pub(crate) fn roundtrip_read(
    profiler: &Profiler,
    store: &dyn ObjectStore,
    name: &str,
    offset: u64,
    bufs: &mut [IoSliceMut<'_>],
) -> lamassu_storage::Result<usize> {
    roundtrip(profiler, store, |q| {
        meter(profiler, store, Category::Io, || {
            store.submit_read_vectored(q, name, offset, bufs)
        })
    })
}

/// One submitted vectored write, drained to completion before returning.
/// Returns the total byte count of the scatter list on success.
pub(crate) fn roundtrip_write(
    profiler: &Profiler,
    store: &dyn ObjectStore,
    name: &str,
    offset: u64,
    bufs: &[IoSlice<'_>],
) -> lamassu_storage::Result<usize> {
    roundtrip(profiler, store, |q| {
        meter(profiler, store, Category::Io, || {
            store.submit_write_vectored(q, name, offset, bufs)
        })
    })
}

/// Submits one operation and waits for its completion: the operation's
/// result — byte count or deferred fault — surfaces only through the drained
/// [`Completion`], exactly as it would in a deeper pipeline.
fn roundtrip(
    profiler: &Profiler,
    store: &dyn ObjectStore,
    submit: impl FnOnce(&mut SubmitQueue) -> SubmitTicket,
) -> lamassu_storage::Result<usize> {
    crate::pool::with_tls(&ROUNDTRIP_SCRATCH, |(q, completions)| {
        q.reset();
        completions.clear();
        let ticket = submit(q);
        profiler.ops_submitted(1);
        meter(profiler, store, Category::Queue, || {
            store.wait_completions(q, completions)
        });
        profiler.ops_completed(completions.len() as u64);
        let result = completions
            .iter()
            .find(|c| c.ticket == ticket)
            .expect("a single submission completes at the wait barrier")
            .result
            .clone();
        completions.clear();
        result
    })
}
