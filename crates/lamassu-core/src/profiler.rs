//! Latency-breakdown instrumentation (paper §4.2, Figure 9).
//!
//! The paper instruments the LamassuFS read and write paths and attributes
//! time to five categories: *Encrypt*, *Decrypt*, *GetCEKey* (dominated by
//! the SHA-256 block hash), *I/O* and *Misc*. The [`Profiler`] here does the
//! same: the shims charge measured wall-clock time to the crypto categories
//! and charge backend time (real call time plus the virtual transport time
//! from the storage profile) to the I/O category. *Misc* is derived at
//! report time as the remainder of total operation time.
//!
//! Two categories extend the paper's five for the tiers this reproduction
//! adds: *Cache* (block-cache management, see `lamassu-cache`) and *Plan*
//! (the span planner mapping byte ranges onto block runs before any crypto
//! or transport happens — see [`crate::span`]). With batch crypto, the
//! `Encrypt`/`Decrypt`/`GetCeKey` categories record the *wall* time of each
//! parallel batch, so the breakdown keeps describing end-to-end latency (not
//! aggregate CPU time) exactly as Figure 9 does.
//!
//! # Histogram-backed categories
//!
//! Since the telemetry PR every category is backed by a preallocated
//! log-linear [`Histogram`] in addition to the Figure 9 sum: each
//! [`Profiler::add`] records the charged duration into the category's
//! histogram (lock-free, allocation-free), so
//! [`Profiler::category_histogram`] can report the *distribution* of
//! per-batch charge times — p50/p95/p99/max — where Figure 9 only shows the
//! total. The same `add` call also feeds the per-operation phase
//! accumulator of an attached [`Tracer`] (see [`Profiler::attach_tracer`]),
//! which is how `op=read` trace spans get their plan/crypto/backend/route
//! child timings without any extra instrumentation in the shims.
//!
//! # Reset semantics
//!
//! [`Profiler::reset`] is a **measurement-window** reset: it zeroes the
//! category sums and histograms but deliberately keeps the attached pools'
//! counters, which describe the mount's lifetime (warm-up included), not a
//! window. [`Profiler::reset_all`] also zeroes the attached pools' traffic
//! counters — use it when the pools' hit rates should describe the next
//! window only. (Before this was split, `reset` kept pool stats silently.)

use crate::pool::{BlockPool, PoolStats};
use lamassu_telemetry::{trace, HistSnapshot, Histogram, Snapshot, Tracer};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A latency category from Figure 9 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// AES-CBC encryption of data blocks (and GCM sealing of metadata).
    Encrypt,
    /// AES-CBC decryption of data blocks (and GCM unsealing of metadata).
    Decrypt,
    /// Convergent-key derivation: SHA-256 of the block plus the AES-ECB KDF.
    GetCeKey,
    /// Backing-store I/O (real call time plus modelled transport time).
    Io,
    /// Block-cache management (lookup, copy, eviction bookkeeping) when a
    /// `lamassu-cache::CachedStore` with an attached profiler sits below the
    /// shim. Zero on uncached mounts.
    Cache,
    /// Span planning: mapping a byte range onto block runs before any crypto
    /// or backend I/O is issued (see [`crate::span`]). Zero on mounts running
    /// the per-block fallback pipeline.
    Plan,
    /// Distribution-tier routing overhead: ring lookups, replica fan-out and
    /// failover bookkeeping in a `lamassu-dist::RoutedStore`, *excluding* the
    /// member backends' own time (which stays in `Io`). Zero on unrouted
    /// mounts.
    Route,
    /// Submit-to-completion wait in the async I/O engine: the time between
    /// issuing a batch of submissions and observing their completions
    /// (poll/wait drains, including the residual virtual transport time the
    /// barrier exposes). Zero on blocking-pipeline mounts.
    Queue,
}

const NUM_CATEGORIES: usize = 8;

impl Category {
    /// Every category, in discriminant order (the order
    /// [`lamassu_telemetry::PHASE_NAMES`] mirrors).
    pub const ALL: [Category; NUM_CATEGORIES] = [
        Category::Encrypt,
        Category::Decrypt,
        Category::GetCeKey,
        Category::Io,
        Category::Cache,
        Category::Plan,
        Category::Route,
        Category::Queue,
    ];

    /// Stable lowercase label used in metric names and exports.
    pub fn label(&self) -> &'static str {
        trace::PHASE_NAMES[*self as usize]
    }
}

/// Accumulated per-category time, plus derived *Misc*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LatencyBreakdown {
    /// Time spent encrypting.
    pub encrypt: Duration,
    /// Time spent decrypting.
    pub decrypt: Duration,
    /// Time spent deriving convergent keys (hashing).
    pub get_ce_key: Duration,
    /// Time spent in backend I/O.
    pub io: Duration,
    /// Time spent in block-cache management (zero on uncached mounts). Note
    /// that the shim's `io` category also covers the wall time of store
    /// calls, so cache time is additionally visible there; `misc` is the
    /// residual and stays conservative.
    pub cache: Duration,
    /// Time spent planning spans (zero on per-block mounts).
    pub plan: Duration,
    /// Time spent in distribution-tier routing, net of the member backends'
    /// own time (zero on unrouted mounts).
    pub route: Duration,
    /// Submit-to-completion wait of the async engine (zero on blocking
    /// mounts).
    pub queue: Duration,
    /// Everything else (buffer management, handle lookup, bookkeeping).
    pub misc: Duration,
}

impl LatencyBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> Duration {
        self.encrypt
            + self.decrypt
            + self.get_ce_key
            + self.io
            + self.cache
            + self.plan
            + self.route
            + self.queue
            + self.misc
    }

    /// Fraction of the total attributed to `GetCEKey`, the quantity the paper
    /// highlights (58 % of seq-write, 80 % of seq-read latency on a RAM
    /// disk).
    pub fn get_ce_key_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.get_ce_key.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Thread-safe accumulator for per-category latencies.
///
/// Beyond the Figure 9 durations, a profiler carries a preallocated latency
/// [`Histogram`] per category (see the module docs), can hold references to
/// the mount's [`BlockPool`]s (see [`Profiler::attach_pool`]) so one handle
/// surfaces both the latency breakdown *and* the buffer-pool hit/miss
/// counters of the zero-allocation data path, and can carry the mount's
/// per-operation [`Tracer`] (see [`Profiler::attach_tracer`]).
#[derive(Default)]
pub struct Profiler {
    categories: Mutex<[Duration; NUM_CATEGORIES]>,
    /// Per-category charge-time distributions, preallocated at construction.
    hists: [Histogram; NUM_CATEGORIES],
    /// Block pools attached by the owning mount, for stats surfacing only.
    pools: Mutex<Vec<BlockPool>>,
    /// The mount's op tracer, once attached (one atomic load to consult).
    tracer: OnceLock<Arc<Tracer>>,
    /// Submitted-but-not-completed backend operations right now (the async
    /// engine's submission-queue occupancy gauge).
    in_flight: AtomicU64,
    /// High-water mark of `in_flight` since the last reset: how deep the
    /// engine actually filled the submission queues.
    in_flight_peak: AtomicU64,
}

impl Profiler {
    /// Creates a profiler with all categories at zero, wrapped for sharing.
    pub fn new() -> Arc<Self> {
        Arc::new(Profiler::default())
    }

    /// Adds `elapsed` to `category`: the Figure 9 sum, the category's
    /// histogram, and — when an op span is open on this thread — the
    /// tracer's per-operation phase accumulator.
    pub fn add(&self, category: Category, elapsed: Duration) {
        {
            let mut cats = self.categories.lock();
            cats[category as usize] += elapsed;
        }
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.hists[category as usize].record(ns);
        trace::phase_add(category as usize, ns);
    }

    /// Runs `f`, charging its wall-clock time to `category`, and returns its
    /// result.
    pub fn time<T>(&self, category: Category, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(category, start.elapsed());
        out
    }

    /// Snapshot of the accumulated categories. `total_runtime` is the
    /// caller-measured end-to-end time (real compute plus virtual transport);
    /// the remainder after the four explicit categories becomes *Misc*.
    pub fn breakdown(&self, total_runtime: Duration) -> LatencyBreakdown {
        let cats = self.categories.lock();
        let explicit: Duration = cats.iter().sum();
        LatencyBreakdown {
            encrypt: cats[Category::Encrypt as usize],
            decrypt: cats[Category::Decrypt as usize],
            get_ce_key: cats[Category::GetCeKey as usize],
            io: cats[Category::Io as usize],
            cache: cats[Category::Cache as usize],
            plan: cats[Category::Plan as usize],
            route: cats[Category::Route as usize],
            queue: cats[Category::Queue as usize],
            misc: total_runtime.saturating_sub(explicit),
        }
    }

    /// Distribution of the durations charged to `category` since the last
    /// reset (per-batch charge times, not per-block).
    pub fn category_histogram(&self, category: Category) -> HistSnapshot {
        self.hists[category as usize].snapshot()
    }

    /// **Measurement-window** reset: zeroes the category sums and
    /// histograms. Attached pools keep their counters — they describe the
    /// mount's lifetime, not a window; use [`Profiler::reset_all`] to clear
    /// those too.
    pub fn reset(&self) {
        *self.categories.lock() = [Duration::ZERO; NUM_CATEGORIES];
        for h in &self.hists {
            h.reset();
        }
        // The live gauge is left alone (ops may genuinely be in flight);
        // the peak restarts with the new window.
        self.in_flight_peak
            .store(self.in_flight.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Full reset: everything [`Profiler::reset`] clears **plus** the
    /// attached pools' traffic counters (hits/misses/recycled/discarded —
    /// the `pooled` gauge and capacity describe live buffers and are
    /// untouched).
    pub fn reset_all(&self) {
        self.reset();
        for pool in self.pools.lock().iter() {
            pool.reset_stats();
        }
    }

    /// Attaches a [`BlockPool`] whose hit/miss counters
    /// [`Profiler::pool_stats`] should report. Shims attach their pools at
    /// mount time so the Figure 9 reports can show the buffer-pool hit rate
    /// next to the latency breakdown. Attaching the same pool again is a
    /// no-op, so re-registering a profiler never double-counts.
    pub fn attach_pool(&self, pool: &BlockPool) {
        let mut pools = self.pools.lock();
        if !pools.iter().any(|p| p.same_pool(pool)) {
            pools.push(pool.clone());
        }
    }

    /// Merged counters of every attached pool (all zeros when none are
    /// attached).
    pub fn pool_stats(&self) -> PoolStats {
        self.pools
            .lock()
            .iter()
            .fold(PoolStats::default(), |acc, p| acc.merge(&p.stats()))
    }

    /// Attaches the mount's per-operation [`Tracer`]. The shims consult it
    /// at each entry point to open op spans; [`Profiler::add`] feeds its
    /// phase accumulator either way. First attachment wins; later calls are
    /// ignored (the tracer is part of the mount's identity).
    pub fn attach_tracer(&self, tracer: Arc<Tracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// The attached tracer, if any (one atomic load — hot-path safe).
    #[inline]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.get()
    }

    /// Records `n` operations entering the submission queue (the async
    /// engine calls this as it submits a batch). Updates the peak gauge.
    #[inline]
    pub fn ops_submitted(&self, n: u64) {
        let now = self.in_flight.fetch_add(n, Ordering::Relaxed) + n;
        self.in_flight_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records `n` completions drained from the queue.
    #[inline]
    pub fn ops_completed(&self, n: u64) {
        self.in_flight.fetch_sub(n, Ordering::Relaxed);
    }

    /// Submitted-but-not-completed operations right now. Zero whenever no
    /// async pipeline is mid-span.
    pub fn in_flight_ops(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Deepest simultaneous submission-queue occupancy since the last
    /// [`Profiler::reset`].
    pub fn in_flight_peak(&self) -> u64 {
        self.in_flight_peak.load(Ordering::Relaxed)
    }

    /// Dumps this profiler into `snap` under `section`: the Figure 9
    /// breakdown (against `total_runtime`), the merged pool counters, and
    /// one latency histogram per category that saw traffic.
    pub fn export(&self, snap: &mut Snapshot, section: &str, total_runtime: Duration) {
        snap.section(section, &self.breakdown(total_runtime));
        snap.section_value(
            section,
            serde::Value::Object(vec![(
                "pool".to_string(),
                Serialize::to_value(&self.pool_stats()),
            )]),
        );
        snap.section_value(
            section,
            serde::Value::Object(vec![
                (
                    "in_flight_ops".to_string(),
                    Serialize::to_value(&self.in_flight_ops()),
                ),
                (
                    "in_flight_peak".to_string(),
                    Serialize::to_value(&self.in_flight_peak()),
                ),
            ]),
        );
        for cat in Category::ALL {
            let hist = self.category_histogram(cat);
            if hist.count > 0 {
                snap.histogram(section, &format!("{}_ns", cat.label()), hist);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_accumulate_independently() {
        let p = Profiler::new();
        p.add(Category::Encrypt, Duration::from_millis(10));
        p.add(Category::Decrypt, Duration::from_millis(20));
        p.add(Category::GetCeKey, Duration::from_millis(30));
        p.add(Category::Io, Duration::from_millis(40));
        let b = p.breakdown(Duration::from_millis(120));
        assert_eq!(b.encrypt, Duration::from_millis(10));
        assert_eq!(b.decrypt, Duration::from_millis(20));
        assert_eq!(b.get_ce_key, Duration::from_millis(30));
        assert_eq!(b.io, Duration::from_millis(40));
        assert_eq!(b.misc, Duration::from_millis(20));
        assert_eq!(b.total(), Duration::from_millis(120));
    }

    #[test]
    fn plan_category_accumulates_and_counts_toward_total() {
        let p = Profiler::new();
        p.add(Category::Plan, Duration::from_millis(5));
        p.add(Category::Io, Duration::from_millis(15));
        let b = p.breakdown(Duration::from_millis(30));
        assert_eq!(b.plan, Duration::from_millis(5));
        assert_eq!(b.misc, Duration::from_millis(10));
        assert_eq!(b.total(), Duration::from_millis(30));
    }

    #[test]
    fn misc_never_goes_negative() {
        let p = Profiler::new();
        p.add(Category::Io, Duration::from_millis(50));
        let b = p.breakdown(Duration::from_millis(10));
        assert_eq!(b.misc, Duration::ZERO);
    }

    #[test]
    fn time_helper_returns_value_and_charges() {
        let p = Profiler::new();
        let v = p.time(Category::GetCeKey, || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(v, 7);
        let b = p.breakdown(Duration::from_millis(100));
        assert!(b.get_ce_key >= Duration::from_millis(2));
    }

    #[test]
    fn fraction_and_reset() {
        let p = Profiler::new();
        p.add(Category::GetCeKey, Duration::from_millis(80));
        let b = p.breakdown(Duration::from_millis(100));
        assert!((b.get_ce_key_fraction() - 0.8).abs() < 1e-9);
        p.reset();
        let b = p.breakdown(Duration::ZERO);
        assert_eq!(b.total(), Duration::ZERO);
        assert_eq!(b.get_ce_key_fraction(), 0.0);
    }

    #[test]
    fn every_add_lands_in_the_category_histogram() {
        let p = Profiler::new();
        p.add(Category::Io, Duration::from_micros(100));
        p.add(Category::Io, Duration::from_micros(300));
        p.add(Category::Encrypt, Duration::from_micros(5));
        let io = p.category_histogram(Category::Io);
        assert_eq!(io.count, 2);
        assert_eq!(io.max, 300_000);
        assert_eq!(p.category_histogram(Category::Encrypt).count, 1);
        assert_eq!(p.category_histogram(Category::Route).count, 0);
    }

    #[test]
    fn category_labels_align_with_phase_names() {
        // The tracer stores phases by `Category as usize`; the two tables
        // must agree forever.
        for cat in Category::ALL {
            assert_eq!(
                cat.label(),
                lamassu_telemetry::PHASE_NAMES[cat as usize],
                "{cat:?}"
            );
        }
        assert_eq!(Category::ALL.len(), lamassu_telemetry::NUM_PHASES);
    }

    #[test]
    fn window_reset_keeps_pool_counters_and_reset_all_clears_them() {
        let p = Profiler::new();
        let pool = BlockPool::new(64, 8);
        p.attach_pool(&pool);
        drop(pool.take()); // one miss, one recycle
        drop(pool.take()); // one hit
        p.add(Category::Io, Duration::from_millis(1));

        p.reset();
        assert_eq!(p.category_histogram(Category::Io).count, 0);
        let stats = p.pool_stats();
        assert_eq!(stats.hits, 1, "window reset keeps pool counters");
        assert_eq!(stats.misses, 1);

        p.reset_all();
        let stats = p.pool_stats();
        assert_eq!((stats.hits, stats.misses, stats.recycled), (0, 0, 0));
        assert_eq!(stats.pooled, 1, "live-buffer gauge survives reset_all");
        assert_eq!(stats.capacity, pool.capacity());
    }

    #[test]
    fn add_feeds_an_open_trace_span() {
        use lamassu_telemetry::{OpKind, Registry, TraceConfig, Tracer};
        let p = Profiler::new();
        let reg = Registry::new();
        let tracer = Tracer::new(&reg, TraceConfig::default());
        p.attach_tracer(tracer.clone());
        {
            let _op = p.tracer().unwrap().op(OpKind::Read, "/spanned", 123);
            p.add(Category::Io, Duration::from_micros(50));
            p.add(Category::Decrypt, Duration::from_micros(20));
        }
        let rec = tracer.recent()[0];
        assert_eq!(rec.file(), "/spanned");
        assert_eq!(rec.phases_ns[Category::Io as usize], 50_000);
        assert_eq!(rec.phases_ns[Category::Decrypt as usize], 20_000);
    }

    #[test]
    fn in_flight_gauge_tracks_occupancy_and_peak() {
        let p = Profiler::new();
        assert_eq!(p.in_flight_ops(), 0);
        p.ops_submitted(3);
        p.ops_submitted(2);
        assert_eq!(p.in_flight_ops(), 5);
        assert_eq!(p.in_flight_peak(), 5);
        p.ops_completed(4);
        assert_eq!(p.in_flight_ops(), 1);
        assert_eq!(p.in_flight_peak(), 5, "peak survives completions");
        p.reset();
        assert_eq!(p.in_flight_ops(), 1, "live gauge survives a reset");
        assert_eq!(p.in_flight_peak(), 1, "peak restarts at the live value");
        p.ops_completed(1);
        assert_eq!(p.in_flight_ops(), 0);
    }

    #[test]
    fn export_composes_breakdown_pool_and_histograms() {
        let p = Profiler::new();
        p.add(Category::GetCeKey, Duration::from_millis(3));
        let mut snap = Snapshot::new();
        p.export(&mut snap, "shim", Duration::from_millis(10));
        let json = snap.to_json();
        assert!(json.contains("\"get_ce_key\""), "{json}");
        assert!(json.contains("\"pool\""), "{json}");
        assert!(json.contains("get_ce_key_ns"), "{json}");
        assert!(json.contains("\"in_flight_ops\""), "{json}");
        let prom = snap.to_prometheus();
        assert!(prom.contains("lamassu_shim_get_ce_key_seconds"), "{prom}");
        assert!(
            prom.contains("# TYPE lamassu_shim_get_ce_key_ns histogram"),
            "{prom}"
        );
    }
}
