//! Latency-breakdown instrumentation (paper §4.2, Figure 9).
//!
//! The paper instruments the LamassuFS read and write paths and attributes
//! time to five categories: *Encrypt*, *Decrypt*, *GetCEKey* (dominated by
//! the SHA-256 block hash), *I/O* and *Misc*. The [`Profiler`] here does the
//! same: the shims charge measured wall-clock time to the crypto categories
//! and charge backend time (real call time plus the virtual transport time
//! from the storage profile) to the I/O category. *Misc* is derived at
//! report time as the remainder of total operation time.
//!
//! Two categories extend the paper's five for the tiers this reproduction
//! adds: *Cache* (block-cache management, see `lamassu-cache`) and *Plan*
//! (the span planner mapping byte ranges onto block runs before any crypto
//! or transport happens — see [`crate::span`]). With batch crypto, the
//! `Encrypt`/`Decrypt`/`GetCeKey` categories record the *wall* time of each
//! parallel batch, so the breakdown keeps describing end-to-end latency (not
//! aggregate CPU time) exactly as Figure 9 does.

use crate::pool::{BlockPool, PoolStats};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A latency category from Figure 9 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// AES-CBC encryption of data blocks (and GCM sealing of metadata).
    Encrypt,
    /// AES-CBC decryption of data blocks (and GCM unsealing of metadata).
    Decrypt,
    /// Convergent-key derivation: SHA-256 of the block plus the AES-ECB KDF.
    GetCeKey,
    /// Backing-store I/O (real call time plus modelled transport time).
    Io,
    /// Block-cache management (lookup, copy, eviction bookkeeping) when a
    /// `lamassu-cache::CachedStore` with an attached profiler sits below the
    /// shim. Zero on uncached mounts.
    Cache,
    /// Span planning: mapping a byte range onto block runs before any crypto
    /// or backend I/O is issued (see [`crate::span`]). Zero on mounts running
    /// the per-block fallback pipeline.
    Plan,
    /// Distribution-tier routing overhead: ring lookups, replica fan-out and
    /// failover bookkeeping in a `lamassu-dist::RoutedStore`, *excluding* the
    /// member backends' own time (which stays in `Io`). Zero on unrouted
    /// mounts.
    Route,
}

const NUM_CATEGORIES: usize = 7;

/// Accumulated per-category time, plus derived *Misc*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time spent encrypting.
    pub encrypt: Duration,
    /// Time spent decrypting.
    pub decrypt: Duration,
    /// Time spent deriving convergent keys (hashing).
    pub get_ce_key: Duration,
    /// Time spent in backend I/O.
    pub io: Duration,
    /// Time spent in block-cache management (zero on uncached mounts). Note
    /// that the shim's `io` category also covers the wall time of store
    /// calls, so cache time is additionally visible there; `misc` is the
    /// residual and stays conservative.
    pub cache: Duration,
    /// Time spent planning spans (zero on per-block mounts).
    pub plan: Duration,
    /// Time spent in distribution-tier routing, net of the member backends'
    /// own time (zero on unrouted mounts).
    pub route: Duration,
    /// Everything else (buffer management, handle lookup, bookkeeping).
    pub misc: Duration,
}

impl LatencyBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> Duration {
        self.encrypt
            + self.decrypt
            + self.get_ce_key
            + self.io
            + self.cache
            + self.plan
            + self.route
            + self.misc
    }

    /// Fraction of the total attributed to `GetCEKey`, the quantity the paper
    /// highlights (58 % of seq-write, 80 % of seq-read latency on a RAM
    /// disk).
    pub fn get_ce_key_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.get_ce_key.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Thread-safe accumulator for per-category latencies.
///
/// Beyond the Figure 9 durations, a profiler can carry references to the
/// mount's [`BlockPool`]s (see [`Profiler::attach_pool`]) so one handle
/// surfaces both the latency breakdown *and* the buffer-pool hit/miss
/// counters of the zero-allocation data path.
#[derive(Default)]
pub struct Profiler {
    categories: Mutex<[Duration; NUM_CATEGORIES]>,
    /// Block pools attached by the owning mount, for stats surfacing only.
    pools: Mutex<Vec<BlockPool>>,
}

impl Profiler {
    /// Creates a profiler with all categories at zero, wrapped for sharing.
    pub fn new() -> Arc<Self> {
        Arc::new(Profiler::default())
    }

    /// Adds `elapsed` to `category`.
    pub fn add(&self, category: Category, elapsed: Duration) {
        let mut cats = self.categories.lock();
        cats[category as usize] += elapsed;
    }

    /// Runs `f`, charging its wall-clock time to `category`, and returns its
    /// result.
    pub fn time<T>(&self, category: Category, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(category, start.elapsed());
        out
    }

    /// Snapshot of the accumulated categories. `total_runtime` is the
    /// caller-measured end-to-end time (real compute plus virtual transport);
    /// the remainder after the four explicit categories becomes *Misc*.
    pub fn breakdown(&self, total_runtime: Duration) -> LatencyBreakdown {
        let cats = self.categories.lock();
        let explicit: Duration = cats.iter().sum();
        LatencyBreakdown {
            encrypt: cats[Category::Encrypt as usize],
            decrypt: cats[Category::Decrypt as usize],
            get_ce_key: cats[Category::GetCeKey as usize],
            io: cats[Category::Io as usize],
            cache: cats[Category::Cache as usize],
            plan: cats[Category::Plan as usize],
            route: cats[Category::Route as usize],
            misc: total_runtime.saturating_sub(explicit),
        }
    }

    /// Resets all categories to zero (attached pools keep their counters —
    /// they describe the mount's lifetime, not a measurement window).
    pub fn reset(&self) {
        *self.categories.lock() = [Duration::ZERO; NUM_CATEGORIES];
    }

    /// Attaches a [`BlockPool`] whose hit/miss counters
    /// [`Profiler::pool_stats`] should report. Shims attach their pools at
    /// mount time so the Figure 9 reports can show the buffer-pool hit rate
    /// next to the latency breakdown. Attaching the same pool again is a
    /// no-op, so re-registering a profiler never double-counts.
    pub fn attach_pool(&self, pool: &BlockPool) {
        let mut pools = self.pools.lock();
        if !pools.iter().any(|p| p.same_pool(pool)) {
            pools.push(pool.clone());
        }
    }

    /// Merged counters of every attached pool (all zeros when none are
    /// attached).
    pub fn pool_stats(&self) -> PoolStats {
        self.pools
            .lock()
            .iter()
            .fold(PoolStats::default(), |acc, p| acc.merge(&p.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_accumulate_independently() {
        let p = Profiler::new();
        p.add(Category::Encrypt, Duration::from_millis(10));
        p.add(Category::Decrypt, Duration::from_millis(20));
        p.add(Category::GetCeKey, Duration::from_millis(30));
        p.add(Category::Io, Duration::from_millis(40));
        let b = p.breakdown(Duration::from_millis(120));
        assert_eq!(b.encrypt, Duration::from_millis(10));
        assert_eq!(b.decrypt, Duration::from_millis(20));
        assert_eq!(b.get_ce_key, Duration::from_millis(30));
        assert_eq!(b.io, Duration::from_millis(40));
        assert_eq!(b.misc, Duration::from_millis(20));
        assert_eq!(b.total(), Duration::from_millis(120));
    }

    #[test]
    fn plan_category_accumulates_and_counts_toward_total() {
        let p = Profiler::new();
        p.add(Category::Plan, Duration::from_millis(5));
        p.add(Category::Io, Duration::from_millis(15));
        let b = p.breakdown(Duration::from_millis(30));
        assert_eq!(b.plan, Duration::from_millis(5));
        assert_eq!(b.misc, Duration::from_millis(10));
        assert_eq!(b.total(), Duration::from_millis(30));
    }

    #[test]
    fn misc_never_goes_negative() {
        let p = Profiler::new();
        p.add(Category::Io, Duration::from_millis(50));
        let b = p.breakdown(Duration::from_millis(10));
        assert_eq!(b.misc, Duration::ZERO);
    }

    #[test]
    fn time_helper_returns_value_and_charges() {
        let p = Profiler::new();
        let v = p.time(Category::GetCeKey, || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(v, 7);
        let b = p.breakdown(Duration::from_millis(100));
        assert!(b.get_ce_key >= Duration::from_millis(2));
    }

    #[test]
    fn fraction_and_reset() {
        let p = Profiler::new();
        p.add(Category::GetCeKey, Duration::from_millis(80));
        let b = p.breakdown(Duration::from_millis(100));
        assert!((b.get_ce_key_fraction() - 0.8).abs() < 1e-9);
        p.reset();
        let b = p.breakdown(Duration::ZERO);
        assert_eq!(b.total(), Duration::ZERO);
        assert_eq!(b.get_ce_key_fraction(), 0.0);
    }
}
