//! The Lamassu shim layer: three stackable file systems over an object store.
//!
//! This crate implements the paper's prototype architecture (§3): a shim that
//! sits in the data path between the application and the backing store,
//! exporting a file-system interface upward and reading/writing opaque
//! objects downward. Three shims share the same [`FileSystem`] trait so the
//! evaluation can compare them directly, exactly as the paper does:
//!
//! * [`PlainFs`] — a pass-through with no encryption (the paper's *PlainFS*
//!   baseline, which isolates the shim/transport overhead).
//! * [`EncFs`] — a conventional AES-256-CBC encrypted file system with a
//!   per-file random key (the paper's *EncFS* baseline, block-aligned
//!   configuration). Its ciphertext never deduplicates.
//! * [`LamassuFs`] — the paper's contribution: block-oriented convergent
//!   encryption with cryptographic metadata embedded in reserved,
//!   block-aligned segments of each file, a multiphase commit protocol for
//!   crash consistency (§2.4), convergent-hash data integrity checking
//!   (§2.5), and batched metadata updates governed by the reserved-slot
//!   parameter `R`.
//!
//! The paper's prototype exports its interface through FUSE; here the shims
//! are mounted in-process behind the [`FileSystem`] trait (see DESIGN.md §3
//! for the substitution rationale). Everything below the trait — encryption,
//! segment layout, metadata I/O, commit, recovery — is the same work the FUSE
//! daemon would do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asyncio;
mod error;
mod handles;
mod iovec;

pub mod cefilefs;
pub mod encfs;
pub mod fs;
pub mod lamassufs;
pub mod plainfs;
pub mod pool;
pub mod profiler;
pub mod span;

pub use cefilefs::CeFileFs;
pub use encfs::{EncFs, EncFsConfig};
pub use error::FsError;
pub use fs::{Fd, FileAttr, FileSystem, OpenFlags};
pub use lamassu_crypto::CryptoBackend;
pub use lamassufs::{IntegrityMode, LamassuConfig, LamassuFs, RecoveryReport, VerifyReport};
pub use plainfs::PlainFs;
pub use pool::{BlockBuf, BlockPool, PoolStats};
pub use profiler::{Category, LatencyBreakdown, Profiler};
pub use span::{IoMode, ResilienceConfig, SpanConfig, SpanPolicy};

/// Result alias for file-system operations.
pub type Result<T> = std::result::Result<T, FsError>;
