//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] as a callable function; the
//! binaries in `src/bin/` are thin wrappers so the whole evaluation can also
//! be rerun programmatically (`run_all`). Every experiment prints a
//! human-readable table that mirrors the corresponding figure or table of the
//! paper and writes a JSON report under `results/`.
//!
//! Scaling: the paper uses 4 GiB synthetic files, multi-GiB VM images and a
//! 256 MiB FIO target. Those sizes only affect precision, not the shape of
//! any result, so the harness defaults to scaled-down sizes that finish in
//! seconds and can be raised through environment variables:
//!
//! * `LAMASSU_BENCH_MB` — FIO file size in MiB (default 32; paper: 256).
//! * `LAMASSU_EFF_MB` — synthetic-file size for the storage-efficiency
//!   experiments in MiB (default 32; paper: 4096).
//! * `LAMASSU_VM_SCALE` — divisor applied to the Table 1 VM image sizes
//!   (default 256; 1 reproduces the full sizes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod setup;

/// Reads a `u64` configuration value from the environment with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FIO target file size in bytes (see crate docs for the knob).
pub fn fio_file_size() -> u64 {
    env_u64("LAMASSU_BENCH_MB", 32) * 1024 * 1024
}

/// Synthetic-file size for storage-efficiency experiments, in bytes.
pub fn efficiency_file_size() -> u64 {
    env_u64("LAMASSU_EFF_MB", 32) * 1024 * 1024
}

/// Scale divisor for the Table 1 VM images.
pub fn vm_scale() -> u64 {
    env_u64("LAMASSU_VM_SCALE", 256).max(1)
}
