//! Table rendering and JSON report output shared by all experiments.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// A simple fixed-width text table that mirrors the paper's figures/tables.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a JSON report under `results/<name>.json`, creating the directory
/// if needed, and returns the path. Failures to write are reported but not
/// fatal (benchmarks still print their tables).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => match fs::write(&path, body) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: could not serialize report {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["longer-name".to_string(), "123.45".to_string()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longer-name"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Header, separator and two rows after the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }
}
