//! Regenerates Table 1: storage efficiency with (synthetic) VM images.

fn main() {
    lamassu_bench::experiments::table1::run(lamassu_bench::vm_scale());
}
