//! Regenerates Figure 10: throughput as the reserved-slot count R varies.

fn main() {
    lamassu_bench::experiments::fig10::run(lamassu_bench::fio_file_size());
}
