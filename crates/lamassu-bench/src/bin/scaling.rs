//! Regenerates the scaling experiment: multi-job 4 KiB random-read
//! throughput for 1/2/4/8 jobs on all four shims over the NFS profile.

fn main() {
    lamassu_bench::experiments::scaling::run(lamassu_bench::fio_file_size().min(8 * 1024 * 1024));
}
