//! Hot-path microbenchmarks with a live allocation counter.
//!
//! This binary installs a counting `#[global_allocator]` (forwarding to the
//! system allocator) and registers it with the experiment, so the printed
//! table includes real **allocs/op** next to ns/block — the number the
//! zero-allocation data path drives to 0 (see `tests/zero_alloc.rs` for the
//! enforced variant).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to [`System`], counting every allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter has no
// safety impact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn read_allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn main() {
    lamassu_bench::experiments::hot_path::set_alloc_counter(read_allocs);
    let mb = lamassu_bench::env_u64("LAMASSU_HOT_MB", 8) as usize;
    lamassu_bench::experiments::hot_path::run(mb);
}
