//! Regenerates the cache experiment: cached vs uncached re-read, cold read
//! and read-modify-write over the NFS transport profile.

fn main() {
    lamassu_bench::experiments::cache::run(lamassu_bench::fio_file_size());
}
