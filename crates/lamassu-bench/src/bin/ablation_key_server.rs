//! Regenerates the §1 local-KDF vs server-aided-key-generation ablation.

fn main() {
    lamassu_bench::experiments::ablation_key_server::run(2048);
}
