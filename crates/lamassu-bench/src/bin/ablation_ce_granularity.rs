//! Regenerates the §5.2 per-block vs per-file convergent-encryption ablation.

fn main() {
    lamassu_bench::experiments::ablation_ce_granularity::run(
        lamassu_bench::efficiency_file_size().min(16 * 1024 * 1024),
        4,
        0.02,
    );
}
