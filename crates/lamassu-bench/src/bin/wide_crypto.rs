//! Wide crypto kernel comparison: fixsliced AES-256 and 4-lane SHA-256 vs
//! the scalar T-table / single-lane baselines, on the batch shapes the span
//! pipeline dispatches (see `experiments::wide_crypto`).

fn main() {
    lamassu_bench::experiments::wide_crypto::run();
}
