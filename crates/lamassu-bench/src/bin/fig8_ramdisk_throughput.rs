//! Regenerates Figure 8: single-file FIO throughput on the RAM-disk profile.

use lamassu_storage::StorageProfile;

fn main() {
    lamassu_bench::experiments::throughput::run(
        "fig8",
        StorageProfile::ram_disk(),
        lamassu_bench::fio_file_size(),
    );
}
