//! Regenerates Figure 9: LamassuFS read/write latency breakdown.

fn main() {
    lamassu_bench::experiments::fig9::run(lamassu_bench::fio_file_size());
}
