//! Regenerates the queue-depth experiment: async-pipeline read makespan at
//! channel queue depths {1, 4, 8, 16} over the NFS transport profile.

fn main() {
    lamassu_bench::experiments::qdepth::run(lamassu_bench::fio_file_size().min(16 * 1024 * 1024));
}
