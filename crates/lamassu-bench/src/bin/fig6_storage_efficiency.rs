//! Regenerates Figure 6: storage efficiency with synthetic files.

fn main() {
    lamassu_bench::experiments::fig6::run(lamassu_bench::efficiency_file_size());
}
