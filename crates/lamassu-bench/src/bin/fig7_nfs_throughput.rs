//! Regenerates Figure 7: single-file FIO throughput over the NFS profile.

use lamassu_storage::StorageProfile;

fn main() {
    lamassu_bench::experiments::throughput::run(
        "fig7",
        StorageProfile::nfs_1gbe(),
        lamassu_bench::fio_file_size(),
    );
}
