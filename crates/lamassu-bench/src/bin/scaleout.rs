//! Regenerates the scale-out experiment: sequential-read/write throughput
//! for 1/2/4/8 routed backends at replication factors 1 and 2 over the NFS
//! profile.

fn main() {
    lamassu_bench::experiments::scaleout::run(lamassu_bench::fio_file_size().min(8 * 1024 * 1024));
}
