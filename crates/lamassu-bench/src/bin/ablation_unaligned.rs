//! Regenerates the §4.2 aligned-vs-unaligned EncFS comparison.

fn main() {
    lamassu_bench::experiments::ablation::run(lamassu_bench::fio_file_size().min(16 * 1024 * 1024));
}
