//! Regenerates the span I/O experiment: backend round trips of the span
//! pipeline vs the per-block fallback over the NFS transport profile.

fn main() {
    lamassu_bench::experiments::span_io::run(lamassu_bench::fio_file_size().min(16 * 1024 * 1024));
}
