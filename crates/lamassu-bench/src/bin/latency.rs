//! Per-op latency percentiles per shim and the telemetry overhead check.
//!
//! Pass `--telemetry` to also dump the traced mount's full snapshot as
//! Prometheus text (and under `results/latency_telemetry.json`).

fn main() {
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    lamassu_bench::experiments::latency::run(lamassu_bench::fio_file_size(), telemetry);
}
