//! Regenerates Figure 11: storage efficiency as the reserved-slot count R varies.

fn main() {
    lamassu_bench::experiments::fig11::run(
        lamassu_bench::efficiency_file_size().min(32 * 1024 * 1024),
    );
}
