//! Runs every experiment of the evaluation in sequence (EXPERIMENTS.md).

use lamassu_bench::experiments;
use lamassu_storage::StorageProfile;

fn main() {
    let fio = lamassu_bench::fio_file_size();
    let eff = lamassu_bench::efficiency_file_size();
    experiments::fig6::run(eff);
    experiments::table1::run(lamassu_bench::vm_scale());
    experiments::throughput::run("fig7", StorageProfile::nfs_1gbe(), fio);
    experiments::throughput::run("fig8", StorageProfile::ram_disk(), fio);
    experiments::fig9::run(fio);
    experiments::fig10::run(fio);
    experiments::fig11::run(eff.min(32 * 1024 * 1024));
    experiments::ablation::run(fio.min(16 * 1024 * 1024));
    experiments::ablation_ce_granularity::run(eff.min(16 * 1024 * 1024), 4, 0.02);
    experiments::ablation_key_server::run(2048);
    experiments::cache::run(fio.min(16 * 1024 * 1024));
    experiments::span_io::run(fio.min(16 * 1024 * 1024));
    experiments::qdepth::run(fio.min(16 * 1024 * 1024));
    experiments::scaling::run(fio.min(8 * 1024 * 1024));
    experiments::scaleout::run(fio.min(8 * 1024 * 1024));
    experiments::hot_path::run(8);
    experiments::wide_crypto::run();
    experiments::chaos::run(fio.min(4 * 1024 * 1024));
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    experiments::latency::run(fio.min(8 * 1024 * 1024), telemetry);
    println!("\nAll experiments complete; JSON reports are under ./results/");
}
