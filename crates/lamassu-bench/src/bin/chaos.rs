//! Regenerates the chaos experiment: retries, hedged reads and circuit
//! breakers under 5% transient faults and a burst member outage.

fn main() {
    lamassu_bench::experiments::chaos::run(lamassu_bench::fio_file_size().min(4 * 1024 * 1024));
}
