//! Shared mount construction for the experiments.

use lamassu_cache::{CacheConfig, CachedStore};
use lamassu_core::{
    EncFs, EncFsConfig, FileSystem, IntegrityMode, LamassuConfig, LamassuFs, PlainFs, SpanConfig,
};
use lamassu_dist::{DistConfig, RoutedStore};
use lamassu_keymgr::{KeyManager, ZoneKeys};
use lamassu_storage::{DedupStore, ObjectStore, StorageProfile};
use std::sync::Arc;

/// The file-system variants compared throughout §4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// Unencrypted pass-through.
    Plain,
    /// Conventional AES-CBC encryption (block-aligned configuration).
    Enc,
    /// Lamassu with full data integrity checking.
    Lamassu,
    /// Lamassu with metadata-only integrity checking.
    LamassuMetaOnly,
}

impl FsKind {
    /// The four variants in the order the paper's figures list them.
    pub const ALL: [FsKind; 4] = [
        FsKind::Plain,
        FsKind::Enc,
        FsKind::Lamassu,
        FsKind::LamassuMetaOnly,
    ];

    /// Label used in figures and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FsKind::Plain => "PlainFS",
            FsKind::Enc => "EncFS",
            FsKind::Lamassu => "LamassuFS",
            FsKind::LamassuMetaOnly => "LamassuFS(meta-only)",
        }
    }
}

/// A mounted shim plus the backing store it sits on.
pub struct Mount {
    /// The mounted file system.
    pub fs: Box<dyn FileSystem>,
    /// The deduplicating backing store underneath it.
    pub store: Arc<DedupStore>,
    /// Which variant this is.
    pub kind: FsKind,
    /// The shim's latency profiler (drives the Figure 9 breakdown).
    pub profiler: std::sync::Arc<lamassu_core::Profiler>,
}

/// Fetches (or creates) the benchmark isolation zone's keys from a fresh key
/// manager, mirroring the paper's KMIP fetch at start time.
pub fn bench_zone_keys() -> ZoneKeys {
    let km = KeyManager::new();
    let zone = km.create_zone(1).expect("fresh key manager");
    km.fetch_zone_keys(zone).expect("zone just created")
}

/// Builds a shim of the requested kind over an arbitrary (possibly cached)
/// object store.
fn shim_over(
    kind: FsKind,
    store: Arc<dyn ObjectStore>,
    reserved_slots: usize,
    span: SpanConfig,
) -> (Box<dyn FileSystem>, std::sync::Arc<lamassu_core::Profiler>) {
    let keys = bench_zone_keys();
    let lamassu_config = |integrity| LamassuConfig {
        geometry: lamassu_format::Geometry::new(4096, reserved_slots)
            .expect("valid benchmark geometry"),
        integrity,
        span,
    };
    match kind {
        FsKind::Plain => {
            let fs = PlainFs::new(store);
            let p = fs.profiler();
            (Box::new(fs), p)
        }
        FsKind::Enc => {
            let fs = EncFs::new(
                store,
                keys.outer,
                EncFsConfig {
                    span,
                    ..EncFsConfig::default()
                },
            );
            let p = fs.profiler();
            (Box::new(fs), p)
        }
        FsKind::Lamassu => {
            let fs = LamassuFs::new(store, keys, lamassu_config(IntegrityMode::Full));
            let p = fs.profiler();
            (Box::new(fs), p)
        }
        FsKind::LamassuMetaOnly => {
            let fs = LamassuFs::new(store, keys, lamassu_config(IntegrityMode::MetaOnly));
            let p = fs.profiler();
            (Box::new(fs), p)
        }
    }
}

/// Builds a fresh mount of the requested kind over its own backing store.
pub fn mount(kind: FsKind, profile: StorageProfile, reserved_slots: usize) -> Mount {
    mount_with_span(kind, profile, reserved_slots, SpanConfig::default())
}

/// Builds a fresh mount with an explicit span-pipeline configuration (the
/// `span_io` experiment compares [`SpanConfig::batched`] against
/// [`SpanConfig::per_block`] mounts).
pub fn mount_with_span(
    kind: FsKind,
    profile: StorageProfile,
    reserved_slots: usize,
    span: SpanConfig,
) -> Mount {
    let store = Arc::new(DedupStore::new(4096, profile));
    let (fs, profiler) = shim_over(kind, store.clone(), reserved_slots, span);
    Mount {
        fs,
        store,
        kind,
        profiler,
    }
}

/// A mount with a [`CachedStore`] slotted between the shim and the backend.
pub struct CachedMount {
    /// The mounted file system (shim over cache over backend).
    pub fs: Box<dyn FileSystem>,
    /// The cache tier. Pass this as the `store` argument of
    /// [`lamassu_workloads::FioTester::run`] so accounting (backend time
    /// plus cache counters) comes from one place.
    pub cache: Arc<CachedStore<DedupStore>>,
    /// The deduplicating backend underneath the cache.
    pub backend: Arc<DedupStore>,
    /// Which shim variant this is.
    pub kind: FsKind,
    /// The shim's latency profiler (also attached to the cache, so cache
    /// management time lands in the `Cache` category of Figure 9).
    pub profiler: std::sync::Arc<lamassu_core::Profiler>,
}

/// Builds a fresh cached mount: shim over [`CachedStore`] over a
/// [`DedupStore`] with the given transport profile.
pub fn mount_cached(
    kind: FsKind,
    profile: StorageProfile,
    reserved_slots: usize,
    cache_config: CacheConfig,
) -> CachedMount {
    let backend = Arc::new(DedupStore::new(4096, profile));
    let cache = Arc::new(CachedStore::new(backend.clone(), cache_config));
    let (fs, profiler) = shim_over(kind, cache.clone(), reserved_slots, SpanConfig::default());
    cache.set_profiler(profiler.clone());
    CachedMount {
        fs,
        cache,
        backend,
        kind,
        profiler,
    }
}

/// A mount with a [`RoutedStore`] distributing blocks over several
/// [`DedupStore`] backends below the shim.
pub struct RoutedMount {
    /// The mounted file system (shim over router over the members).
    pub fs: Box<dyn FileSystem>,
    /// The distribution tier. Pass this as the `store` argument of
    /// [`lamassu_workloads::FioTester::run`]: its `io_time` is the busiest
    /// member's makespan and its counters are the cluster totals.
    pub router: Arc<RoutedStore<DedupStore>>,
    /// The member backends, in stable-id order at mount time.
    pub members: Vec<Arc<DedupStore>>,
    /// Which shim variant this is.
    pub kind: FsKind,
    /// The shim's latency profiler (also attached to the router, so routing
    /// time lands in the `Route` category of Figure 9).
    pub profiler: std::sync::Arc<lamassu_core::Profiler>,
}

/// Builds a fresh routed mount: shim over a [`RoutedStore`] spreading
/// placement units across `backends` fresh [`DedupStore`]s, each with its
/// own transport profile instance (independent servers).
pub fn mount_routed(
    kind: FsKind,
    profile: StorageProfile,
    reserved_slots: usize,
    backends: usize,
    config: DistConfig,
) -> RoutedMount {
    let members: Vec<Arc<DedupStore>> = (0..backends)
        .map(|_| Arc::new(DedupStore::new(4096, profile)))
        .collect();
    let router = Arc::new(RoutedStore::new(members.clone(), config));
    let (fs, profiler) = shim_over(
        kind,
        router.clone() as Arc<dyn ObjectStore>,
        reserved_slots,
        SpanConfig::default(),
    );
    router.set_profiler(profiler.clone());
    RoutedMount {
        fs,
        router,
        members,
        kind,
        profiler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mounts_construct_and_label() {
        for kind in FsKind::ALL {
            let m = mount(kind, StorageProfile::instant(), 8);
            assert_eq!(m.kind, kind);
            assert!(!kind.label().is_empty());
            let fd = m.fs.create("/t").unwrap();
            m.fs.write(fd, 0, b"ok").unwrap();
            assert_eq!(m.fs.read(fd, 0, 2).unwrap(), b"ok");
        }
    }

    #[test]
    fn routed_mounts_round_trip_and_stripe() {
        use lamassu_dist::Granularity;
        for kind in FsKind::ALL {
            let m = mount_routed(
                kind,
                StorageProfile::instant(),
                8,
                3,
                DistConfig::new(2).granularity(Granularity::BlockRange(8192)),
            );
            assert_eq!(m.members.len(), 3);
            let fd = m.fs.create("/t").unwrap();
            let data = vec![5u8; 64 * 1024];
            m.fs.write(fd, 0, &data).unwrap();
            m.fs.fsync(fd).unwrap();
            assert_eq!(m.fs.read(fd, 0, data.len()).unwrap(), data);
            let agg = m.router.io_counters();
            assert!(agg.write_ops > 0, "{kind:?} never hit the members");
        }
    }

    #[test]
    fn all_cached_mounts_round_trip_and_count_cache_traffic() {
        for kind in FsKind::ALL {
            for config in [CacheConfig::write_through(64), CacheConfig::write_back(64)] {
                let m = mount_cached(kind, StorageProfile::instant(), 8, config);
                let fd = m.fs.create("/t").unwrap();
                m.fs.write(fd, 0, &[7u8; 8192]).unwrap();
                m.fs.fsync(fd).unwrap();
                assert_eq!(m.fs.read(fd, 0, 8192).unwrap(), vec![7u8; 8192]);
                assert_eq!(m.fs.read(fd, 0, 8192).unwrap(), vec![7u8; 8192]);
                let counters = m.cache.io_counters();
                assert!(
                    counters.cache_hits > 0,
                    "{:?} over {:?} never hit",
                    kind,
                    config.mode
                );
            }
        }
    }
}
