//! Shared mount construction for the experiments.

use lamassu_core::{
    EncFs, EncFsConfig, FileSystem, IntegrityMode, LamassuConfig, LamassuFs, PlainFs,
};
use lamassu_keymgr::{KeyManager, ZoneKeys};
use lamassu_storage::{DedupStore, StorageProfile};
use std::sync::Arc;

/// The file-system variants compared throughout §4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// Unencrypted pass-through.
    Plain,
    /// Conventional AES-CBC encryption (block-aligned configuration).
    Enc,
    /// Lamassu with full data integrity checking.
    Lamassu,
    /// Lamassu with metadata-only integrity checking.
    LamassuMetaOnly,
}

impl FsKind {
    /// The four variants in the order the paper's figures list them.
    pub const ALL: [FsKind; 4] = [
        FsKind::Plain,
        FsKind::Enc,
        FsKind::Lamassu,
        FsKind::LamassuMetaOnly,
    ];

    /// Label used in figures and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FsKind::Plain => "PlainFS",
            FsKind::Enc => "EncFS",
            FsKind::Lamassu => "LamassuFS",
            FsKind::LamassuMetaOnly => "LamassuFS(meta-only)",
        }
    }
}

/// A mounted shim plus the backing store it sits on.
pub struct Mount {
    /// The mounted file system.
    pub fs: Box<dyn FileSystem>,
    /// The deduplicating backing store underneath it.
    pub store: Arc<DedupStore>,
    /// Which variant this is.
    pub kind: FsKind,
    /// The shim's latency profiler (drives the Figure 9 breakdown).
    pub profiler: std::sync::Arc<lamassu_core::Profiler>,
}

/// Fetches (or creates) the benchmark isolation zone's keys from a fresh key
/// manager, mirroring the paper's KMIP fetch at start time.
pub fn bench_zone_keys() -> ZoneKeys {
    let km = KeyManager::new();
    let zone = km.create_zone(1).expect("fresh key manager");
    km.fetch_zone_keys(zone).expect("zone just created")
}

/// Builds a fresh mount of the requested kind over its own backing store.
pub fn mount(kind: FsKind, profile: StorageProfile, reserved_slots: usize) -> Mount {
    let store = Arc::new(DedupStore::new(4096, profile));
    let keys = bench_zone_keys();
    let lamassu_config = |integrity| LamassuConfig {
        geometry: lamassu_format::Geometry::new(4096, reserved_slots)
            .expect("valid benchmark geometry"),
        integrity,
    };
    let (fs, profiler): (Box<dyn FileSystem>, _) = match kind {
        FsKind::Plain => {
            let fs = PlainFs::new(store.clone());
            let p = fs.profiler();
            (Box::new(fs), p)
        }
        FsKind::Enc => {
            let fs = EncFs::new(store.clone(), keys.outer, EncFsConfig::default());
            let p = fs.profiler();
            (Box::new(fs), p)
        }
        FsKind::Lamassu => {
            let fs = LamassuFs::new(store.clone(), keys, lamassu_config(IntegrityMode::Full));
            let p = fs.profiler();
            (Box::new(fs), p)
        }
        FsKind::LamassuMetaOnly => {
            let fs = LamassuFs::new(store.clone(), keys, lamassu_config(IntegrityMode::MetaOnly));
            let p = fs.profiler();
            (Box::new(fs), p)
        }
    };
    Mount {
        fs,
        store,
        kind,
        profiler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mounts_construct_and_label() {
        for kind in FsKind::ALL {
            let m = mount(kind, StorageProfile::instant(), 8);
            assert_eq!(m.kind, kind);
            assert!(!kind.label().is_empty());
            let fd = m.fs.create("/t").unwrap();
            m.fs.write(fd, 0, b"ok").unwrap();
            assert_eq!(m.fs.read(fd, 0, 2).unwrap(), b"ok");
        }
    }
}
