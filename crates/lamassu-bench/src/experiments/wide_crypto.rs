//! Wide crypto kernels: fixsliced AES-256 and 4-lane SHA-256 vs the scalar
//! T-table / single-lane baselines.
//!
//! The convergent data path spends its CPU time in three kernels — CBC over
//! per-block key chains, the GCM CTR body, and the per-block SHA-256 of
//! GetCEKey. This experiment measures each through the wide constant-time
//! implementation (`lamassu_crypto::fixsliced`, `digest_blocks_x4`) and
//! through the scalar oracle it replaced, on the batch shapes the span
//! pipeline actually dispatches:
//!
//! * **CBC decrypt, 8-block batch** — eight 4 KiB data blocks, each its own
//!   CBC chain under its own convergent key; the wide kernel slices 16 AES
//!   blocks per pass *within* a chain. The release shape test pins the
//!   tentpole acceptance bar: **≥ 2x** the T-table throughput.
//! * **CBC encrypt, 16-block batch** — encryption is strictly serial within
//!   a chain, so the wide kernel runs 16 *chains* in lockstep (one lane
//!   each); below [`lamassu_crypto::batch::WIDE_MIN_BLOCKS`] chains the
//!   dispatcher keeps the scalar path, which is why the encrypt bar sits at
//!   the 16-chain group.
//! * **CTR, 32 KiB** — the GCM body/tag keystream, always sliceable.
//! * **SHA-256 x4** — four 4 KiB blocks hashed in one interleaved pass vs
//!   four scalar [`digest_block`] calls.
//!
//! Both sides pay their real per-batch costs: the scalar side expands one
//! T-table key schedule per chain, the wide side packs/unpacks bit-planes
//! and expands its own schedules, exactly as the batch layer does.

use crate::report::{write_json, Table};
use lamassu_crypto::aes::Aes256;
use lamassu_crypto::sha256::{digest_block, digest_blocks_x4, SHA_LANES};
use lamassu_crypto::{cbc, ctr, fixsliced, Key256, FIXED_IV};
use serde::Serialize;
use std::time::Instant;

/// Lamassu data-block size (one CBC chain).
const BLOCK: usize = 4096;

/// One wide-vs-scalar comparison.
#[derive(Debug, Clone, Serialize)]
pub struct WideCryptoRow {
    /// Kernel and batch shape.
    pub metric: String,
    /// Microseconds per batch through the wide constant-time kernel.
    pub fixsliced_us: f64,
    /// Microseconds per batch through the scalar T-table / single-lane path.
    pub ttable_us: f64,
    /// `ttable_us / fixsliced_us`.
    pub speedup: f64,
}

/// Minimum time of `rounds` rounds of `iters` iterations, in µs/iter.
fn best_of(rounds: usize, iters: u32, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / iters as f64);
    }
    best
}

/// Per-chain convergent keys and a deterministic plaintext of `chains`
/// 4 KiB blocks.
fn chained_input(chains: usize) -> (Vec<Key256>, Vec<u8>) {
    let keys: Vec<Key256> = (0..chains)
        .map(|c| std::array::from_fn(|i| (c * 31 + i * 7 + 3) as u8))
        .collect();
    let data: Vec<u8> = (0..chains * BLOCK).map(|i| (i % 251) as u8).collect();
    (keys, data)
}

/// Runs the wide-kernel comparison (min-of-N timing on every row).
pub fn run() -> Vec<WideCryptoRow> {
    let mut rows = Vec::new();
    let mut push = |metric: &str, fix_us: f64, tt_us: f64| {
        rows.push(WideCryptoRow {
            metric: metric.to_string(),
            fixsliced_us: fix_us,
            ttable_us: tt_us,
            speedup: tt_us / fix_us,
        });
    };
    const ROUNDS: usize = 30;

    // CBC decrypt: the span read path. 8 chains = the issue's 8-block batch.
    for chains in [8usize, 16] {
        let (keys, plain) = chained_input(chains);
        let mut ct = plain.clone();
        fixsliced::cbc_encrypt_chains(&keys, &FIXED_IV, &mut ct, BLOCK);
        let mut buf = ct.clone();
        let fix = best_of(ROUNDS, 8, || {
            buf.copy_from_slice(&ct);
            fixsliced::cbc_decrypt_chains(&keys, &FIXED_IV, &mut buf, BLOCK);
        });
        assert_eq!(buf, plain, "wide decrypt mismatch");
        let tt = best_of(ROUNDS, 8, || {
            buf.copy_from_slice(&ct);
            for (chain, key) in buf.chunks_mut(BLOCK).zip(&keys) {
                cbc::decrypt_in_place(&Aes256::new(key), &FIXED_IV, chain).unwrap();
            }
        });
        assert_eq!(buf, plain, "scalar decrypt mismatch");
        push(&format!("cbc decrypt {chains}x4KiB chains"), fix, tt);
    }

    // CBC encrypt: the span write path at the 16-chain lockstep group.
    {
        let chains = fixsliced::WIDE_BLOCKS;
        let (keys, plain) = chained_input(chains);
        let mut buf = plain.clone();
        let fix = best_of(ROUNDS, 8, || {
            buf.copy_from_slice(&plain);
            fixsliced::cbc_encrypt_chains(&keys, &FIXED_IV, &mut buf, BLOCK);
        });
        let wide_ct = buf.clone();
        let tt = best_of(ROUNDS, 8, || {
            buf.copy_from_slice(&plain);
            for (chain, key) in buf.chunks_mut(BLOCK).zip(&keys) {
                cbc::encrypt_in_place(&Aes256::new(key), &FIXED_IV, chain).unwrap();
            }
        });
        assert_eq!(buf, wide_ct, "encrypt backends disagree");
        push(&format!("cbc encrypt {chains}x4KiB chains"), fix, tt);
    }

    // CTR keystream: the GCM body over one 32 KiB metadata span.
    {
        let key = [0x5au8; 32];
        let fix_cipher = fixsliced::Aes256Fix::new(&key);
        let tt_cipher = Aes256::new(&key);
        let j = [0x17u8; 16];
        let mut buf = vec![0u8; 8 * BLOCK];
        let fix = best_of(ROUNDS, 8, || {
            fixsliced::ctr32_xor(&fix_cipher, &j, &mut buf);
        });
        let tt = best_of(ROUNDS, 8, || {
            ctr::ctr32_xor_in_place(&tt_cipher, &j, &mut buf);
        });
        push("ctr 32KiB", fix, tt);
    }

    // SHA-256: four 4 KiB blocks, interleaved vs scalar.
    {
        let lanes: Vec<Vec<u8>> = (0..SHA_LANES)
            .map(|l| (0..BLOCK).map(|i| ((i + l * 131) % 251) as u8).collect())
            .collect();
        let refs: [&[u8]; SHA_LANES] = std::array::from_fn(|i| lanes[i].as_slice());
        let fix = best_of(ROUNDS, 64, || {
            std::hint::black_box(digest_blocks_x4(std::hint::black_box(refs)));
        });
        let tt = best_of(ROUNDS, 64, || {
            for lane in &lanes {
                std::hint::black_box(digest_block(std::hint::black_box(lane)));
            }
        });
        push("sha256 4x4KiB lanes", fix, tt);
    }

    let mut table = Table::new(
        "Wide crypto kernels: fixsliced/multi-lane vs scalar T-table (us/batch)",
        &["metric", "fixsliced", "ttable", "speedup"],
    );
    for r in &rows {
        table.row(&[
            r.metric.clone(),
            format!("{:.1}", r.fixsliced_us),
            format!("{:.1}", r.ttable_us),
            format!("{:.2}x", r.speedup),
        ]);
    }
    table.print();
    write_json("wide_crypto", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [WideCryptoRow], metric: &str) -> &'a WideCryptoRow {
        rows.iter()
            .find(|r| r.metric == metric)
            .unwrap_or_else(|| panic!("missing metric {metric}"))
    }

    /// The tentpole acceptance shape: the wide kernels beat the T-table
    /// oracle by ≥ 2x on the 8-block decrypt batch, and every other batch
    /// shape the dispatcher routes wide holds a clear win.
    #[test]
    fn wide_kernels_hold_their_speedups() {
        let rows = run();

        let dec8 = find(&rows, "cbc decrypt 8x4KiB chains");
        assert!(
            dec8.speedup >= 2.0,
            "8-block wide decrypt speedup {:.2}x < 2x ({:.1}us vs {:.1}us)",
            dec8.speedup,
            dec8.fixsliced_us,
            dec8.ttable_us
        );
        let dec16 = find(&rows, "cbc decrypt 16x4KiB chains");
        assert!(
            dec16.speedup >= 2.0,
            "16-block decrypt {:.2}x",
            dec16.speedup
        );
        let enc = find(&rows, "cbc encrypt 16x4KiB chains");
        assert!(enc.speedup >= 1.5, "16-chain encrypt {:.2}x", enc.speedup);
        let ctr = find(&rows, "ctr 32KiB");
        assert!(ctr.speedup >= 2.0, "CTR {:.2}x", ctr.speedup);
        let sha = find(&rows, "sha256 4x4KiB lanes");
        assert!(sha.speedup >= 1.5, "SHA x4 {:.2}x", sha.speedup);
    }
}
