//! §4.2 ablation: block-aligned vs unaligned EncFS over NFS.
//!
//! The paper disables EncFS's unaligned per-block metadata because
//! "block-unaligned EncFS is at least 10x slower than block-aligned one when
//! used over NFS: 7 MB/s versus 85 MB/s ... in the case of seq-write". The
//! mechanism is that every unaligned 4 KiB write straddles two backend blocks
//! and forces read-modify-write at the filer. This ablation reproduces the
//! effect with the EncFS shim's unaligned mode over the NFS transport
//! profile; it also explains why Lamassu goes to the trouble of keeping its
//! embedded metadata block-aligned (§2.3).

use crate::report::{write_json, Table};
use lamassu_core::{EncFs, EncFsConfig};
use lamassu_keymgr::KeyManager;
use lamassu_storage::{DedupStore, StorageProfile};
use lamassu_workloads::{FioConfig, FioTester, Workload};
use serde::Serialize;
use std::sync::Arc;

/// One (configuration, workload) result of the ablation.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// "aligned" or "unaligned".
    pub config: String,
    /// Workload label.
    pub workload: String,
    /// Bandwidth in MiB/s.
    pub bandwidth_mib_s: f64,
}

/// Runs the aligned-vs-unaligned EncFS ablation with a `file_size`-byte file.
pub fn run(file_size: u64) -> Vec<AblationRow> {
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });
    let km = KeyManager::new();
    let zone = km.create_zone(1).expect("fresh key manager");
    let keys = km.fetch_zone_keys(zone).expect("zone created above");

    let mut rows = Vec::new();
    for aligned in [true, false] {
        let store = Arc::new(DedupStore::new(4096, StorageProfile::nfs_1gbe()));
        let fs = EncFs::new(
            store.clone(),
            keys.outer,
            EncFsConfig {
                block_size: 4096,
                aligned,
                ..EncFsConfig::default()
            },
        );
        tester.populate(&fs, "/fio.dat").expect("populate");
        for workload in [Workload::SeqWrite, Workload::SeqRead] {
            let result = tester
                .run(&fs, store.as_ref(), "/fio.dat", workload)
                .expect("benchmark workload");
            rows.push(AblationRow {
                config: if aligned { "aligned" } else { "unaligned" }.to_string(),
                workload: workload.label().to_string(),
                bandwidth_mib_s: result.bandwidth_mib_s,
            });
        }
    }

    let mut table = Table::new(
        "Ablation (§4.2): EncFS block alignment over the NFS profile (MiB/s)",
        &["configuration", "seq-write", "seq-read"],
    );
    for config in ["aligned", "unaligned"] {
        let get = |wl: &str| {
            rows.iter()
                .find(|r| r.config == config && r.workload == wl)
                .map(|r| format!("{:.1}", r.bandwidth_mib_s))
                .unwrap_or_default()
        };
        table.row(&[config.to_string(), get("seq-write"), get("seq-read")]);
    }
    table.print();
    write_json("ablation_unaligned", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaligned_writes_are_slower_over_nfs() {
        let rows = run(2 * 1024 * 1024);
        let bw = |config: &str, wl: &str| {
            rows.iter()
                .find(|r| r.config == config && r.workload == wl)
                .unwrap()
                .bandwidth_mib_s
        };
        assert!(
            bw("aligned", "seq-write") > bw("unaligned", "seq-write") * 1.5,
            "aligned {} vs unaligned {}",
            bw("aligned", "seq-write"),
            bw("unaligned", "seq-write")
        );
    }
}
