//! Chaos experiment: the self-healing tier under injected faults.
//!
//! Three scenarios share one deterministic mixed workload (4 KiB reads and
//! writes with occasional 256 KiB reads, offsets drawn from splitmix64)
//! driven at the object-store level so per-op latency is pure modelled
//! transport time plus the resilience layer's virtual backoff:
//!
//! 1. **control** — a fault-free NFS-profile backend under
//!    [`ResilientStore`]: the latency baseline (and proof the wrapper adds
//!    nothing when nothing fails).
//! 2. **transient faults** — the same backend behind a [`FaultyStore`]
//!    refusing 5 % of ops. Retries with virtual-time backoff must absorb
//!    every fault (zero client-visible errors) and quantile-triggered
//!    hedging must fire on the slow tail, while p99 stays within **3×**
//!    the fault-free p99.
//! 3. **routed burst** — a 4-backend, R = 2 routed cluster, every member
//!    at 5 % transient faults, plus a hard crash of one member that heals
//!    only after refusing a burst of ops. The [`BreakerSet`] gate must
//!    open on the crashed member (degraded reads/writes keep the client
//!    at zero errors), re-admit it through a half-open probe once it
//!    heals, and the reclose's targeted scrub plus one full scrub must
//!    leave a second full scrub with nothing to repair (convergence).

use crate::report::{write_json, Table};
use lamassu_dist::{DistConfig, Granularity, RoutedStore};
use lamassu_resilience::{
    BreakerConfig, BreakerSet, HedgeConfig, OpBudget, ResilientStore, RetryPolicy,
};
use lamassu_storage::{DedupStore, FaultyStore, ObjectStore, StorageProfile};
use lamassu_telemetry::Histogram;
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Transient-fault probability of scenarios 2 and 3.
pub const FAULT_RATE: f64 = 0.05;

/// Placement-unit size of the routed scenario.
pub const UNIT_BYTES: u64 = 128 * 1024;

/// Ops per measured phase.
const OPS: usize = 600;

/// One scenario's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosRow {
    /// Scenario label.
    pub scenario: String,
    /// Operations driven in the measured phase(s).
    pub ops: u64,
    /// Operations that surfaced an error to the client (availability
    /// demands zero while every unit keeps a healthy replica).
    pub client_errors: u64,
    /// 99th-percentile per-op virtual latency, milliseconds.
    pub p99_ms: f64,
    /// Transient-failure retries the resilience layer performed.
    pub retries: u64,
    /// Operations that failed at least once but succeeded within budget.
    pub recoveries: u64,
    /// Duplicate read attempts launched past the latency quantile.
    pub hedged_reads: u64,
    /// Hedges that completed no later than the primary (or rescued it).
    pub hedge_wins: u64,
    /// Circuit-breaker Closed → Open transitions.
    pub breaker_opens: u64,
    /// Successful half-open probes (Open → Closed transitions).
    pub breaker_recloses: u64,
    /// Targeted member scrubs triggered by breaker recloses.
    pub probe_scrubs: u64,
    /// Units the post-chaos full scrub repaired.
    pub scrub_repaired: u64,
    /// Units a second full scrub still found divergent (must be 0).
    pub final_mismatches: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Writes a `file_size`-byte object in 1 MiB strides.
fn populate(store: &dyn ObjectStore, name: &str, file_size: u64) {
    store.create(name).expect("fresh store");
    let chunk = vec![0xA5u8; 1024 * 1024];
    let mut off = 0;
    while off < file_size {
        let take = chunk.len().min((file_size - off) as usize);
        store.write_at(name, off, &chunk[..take]).expect("populate");
        off += take as u64;
    }
}

/// Drives the deterministic mixed workload, recording each op's virtual
/// latency, and returns the number of client-visible errors.
fn drive(store: &dyn ObjectStore, name: &str, file_size: u64, seed: u64, hist: &Histogram) -> u64 {
    let mut small = vec![0u8; 4096];
    let mut large = vec![0u8; 256 * 1024];
    let mut errors = 0;
    for i in 0..OPS {
        let r = splitmix64(seed ^ (i as u64));
        let t0 = store.io_time();
        let result = if i % 13 == 7 {
            let off = (r % (file_size - large.len() as u64)) & !4095;
            store.read_into(name, off, &mut large).map(|_| ())
        } else if i % 5 == 4 {
            let off = (r % (file_size - small.len() as u64)) & !4095;
            store.write_at(name, off, &small)
        } else {
            let off = (r % (file_size - small.len() as u64)) & !4095;
            store.read_into(name, off, &mut small).map(|_| ())
        };
        let lat = store.io_time().saturating_sub(t0);
        hist.record(lat.as_nanos().min(u64::MAX as u128) as u64);
        if result.is_err() {
            errors += 1;
        }
    }
    errors
}

/// Hedge trigger used by the single-backend scenarios: p90 of the live
/// attempt history, so the occasional 256 KiB read (1/13 of ops) sits
/// above the threshold once the 4 KiB steady state establishes it.
fn hedge() -> HedgeConfig {
    HedgeConfig {
        quantile: 0.90,
        min_samples: 32,
        refresh_every: 16,
        floor: Duration::from_nanos(1),
    }
}

fn single_backend(file_size: u64, fault_rate: f64, label: &str) -> ChaosRow {
    let faulty = Arc::new(FaultyStore::new(Arc::new(DedupStore::new(
        4096,
        StorageProfile::nfs_1gbe(),
    ))));
    let store = ResilientStore::new(faulty.clone(), RetryPolicy::default(), OpBudget::default())
        .with_hedging(hedge());
    populate(&store, "chaos.dat", file_size);
    if fault_rate > 0.0 {
        faulty.transient_fault_rate(0xc0ffee, fault_rate);
    }
    let hist = Histogram::new();
    let errors = drive(&store, "chaos.dat", file_size, 0xda7a, &hist);
    let s = store.stats();
    ChaosRow {
        scenario: label.to_string(),
        ops: OPS as u64,
        client_errors: errors,
        p99_ms: hist.quantile(0.99) as f64 / 1e6,
        retries: s.retries,
        recoveries: s.recoveries,
        hedged_reads: s.hedged_reads,
        hedge_wins: s.hedge_wins,
        breaker_opens: 0,
        breaker_recloses: 0,
        probe_scrubs: 0,
        scrub_repaired: 0,
        final_mismatches: 0,
    }
}

fn routed_burst(file_size: u64) -> ChaosRow {
    let members: Vec<Arc<FaultyStore>> = (0..4)
        .map(|_| {
            Arc::new(FaultyStore::new(Arc::new(DedupStore::new(
                4096,
                StorageProfile::nfs_1gbe(),
            ))))
        })
        .collect();
    let router = Arc::new(RoutedStore::new(
        members.clone(),
        DistConfig::new(2).granularity(Granularity::BlockRange(UNIT_BYTES)),
    ));
    let breakers = Arc::new(BreakerSet::new(BreakerConfig {
        cooldown: 4,
        ..BreakerConfig::default()
    }));
    router.set_health_gate(breakers.clone());
    // Retries only: the router already fans reads over replicas, so
    // hedging is the single-backend scenarios' job.
    let store = ResilientStore::new(router.clone(), RetryPolicy::default(), OpBudget::default());
    populate(&store, "chaos.dat", file_size);

    // 5% transient refusals everywhere, plus a burst outage on member 0:
    // it hard-crashes now and heals only after refusing 16 ops — long
    // enough that the breaker opens, several half-open probes fail, and
    // the healed member re-enters through a successful probe.
    for (i, m) in members.iter().enumerate() {
        m.transient_fault_rate(0xbad_5eed ^ i as u64, FAULT_RATE);
    }
    members[0].heal_after_refusals(16);
    members[0].crash_after_writes(0);

    let hist = Histogram::new();
    let mut errors = 0;
    let mut probe_scrubbed = 0u64;
    for round in 0..3 {
        errors += drive(&store, "chaos.dat", file_size, 0xf00d ^ round, &hist);
        // A reclosed breaker queues its member for a targeted resync; the
        // maintenance loop drains it between workload rounds.
        for id in router.take_probe_scrub_requests() {
            router.scrub_member(id);
            probe_scrubbed += 1;
        }
    }

    // Convergence: one full scrub mops up the remaining suspects (missed
    // writes on untouched members), after which a second pass must find
    // every replica set identical.
    let repair_pass = router.scrub();
    let verify_pass = router.scrub();
    let s = store.stats();
    let b = breakers.stats();
    ChaosRow {
        scenario: "routed 4x R=2, 5% transient + burst outage".to_string(),
        ops: 3 * OPS as u64,
        client_errors: errors,
        p99_ms: hist.quantile(0.99) as f64 / 1e6,
        retries: s.retries,
        recoveries: s.recoveries,
        hedged_reads: s.hedged_reads,
        hedge_wins: s.hedge_wins,
        breaker_opens: b.opens,
        breaker_recloses: b.recloses,
        probe_scrubs: probe_scrubbed,
        scrub_repaired: repair_pass.repaired,
        final_mismatches: verify_pass.mismatches,
    }
}

/// Runs all three scenarios with a `file_size`-byte object and returns one
/// row per scenario.
pub fn run(file_size: u64) -> Vec<ChaosRow> {
    let rows = vec![
        single_backend(file_size, 0.0, "control (fault-free)"),
        single_backend(file_size, FAULT_RATE, "single backend, 5% transient"),
        routed_burst(file_size),
    ];

    let mut table = Table::new(
        "Chaos: self-healing under 5% transient faults and a burst outage (NFS profile)",
        &[
            "scenario",
            "ops",
            "errors",
            "p99 ms",
            "retries",
            "hedges",
            "hedge wins",
            "brk open",
            "brk reclose",
            "scrubbed",
        ],
    );
    for r in &rows {
        table.row(&[
            r.scenario.clone(),
            format!("{}", r.ops),
            format!("{}", r.client_errors),
            format!("{:.2}", r.p99_ms),
            format!("{}", r.retries),
            format!("{}", r.hedged_reads),
            format!("{}", r.hedge_wins),
            format!("{}", r.breaker_opens),
            format!("{}", r.breaker_recloses),
            format!("{}", r.probe_scrubs),
        ]);
    }
    table.print();
    write_json("chaos", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_faults_stay_invisible_and_the_cluster_converges() {
        let rows = run(4 * 1024 * 1024);
        let control = &rows[0];
        let faulted = &rows[1];
        let routed = &rows[2];

        // Availability: with retries riding out the 5% refusals and every
        // unit keeping a healthy replica, the client sees zero errors.
        for r in &rows {
            assert_eq!(r.client_errors, 0, "{}: visible errors", r.scenario);
        }
        assert_eq!(control.retries, 0, "control must be fault-free");

        // The injected faults were real and the recovery machinery ran.
        assert!(faulted.retries >= 1, "{faulted:?}");
        assert!(faulted.recoveries >= 1, "{faulted:?}");
        assert!(faulted.hedged_reads >= 1, "{faulted:?}");
        assert!(faulted.hedge_wins >= 1, "{faulted:?}");
        assert!(routed.retries >= 1, "{routed:?}");

        // Latency: riding out 5% faults may cost backoff on the tail but
        // must keep p99 within 3x of the fault-free baseline.
        assert!(
            faulted.p99_ms <= 3.0 * control.p99_ms,
            "faulted p99 {:.2}ms vs control {:.2}ms",
            faulted.p99_ms,
            control.p99_ms
        );

        // The burst outage drove at least one full breaker cycle, and the
        // reclose queued a targeted scrub.
        assert!(routed.breaker_opens >= 1, "{routed:?}");
        assert!(routed.breaker_recloses >= 1, "{routed:?}");
        assert!(routed.probe_scrubs >= 1, "{routed:?}");

        // Convergence: after the repair scrub, a second pass finds every
        // replica set identical.
        assert_eq!(routed.final_mismatches, 0, "{routed:?}");
    }
}
