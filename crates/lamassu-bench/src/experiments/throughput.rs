//! Figures 7 and 8: single-file FIO throughput on a remote filer vs RAM disk.
//!
//! Five workloads (seq/rand read/write plus 7:3 mixed) are run against one
//! file through each of the four shims (PlainFS, EncFS, LamassuFS,
//! LamassuFS meta-only), first with the NFS-over-1GbE transport profile
//! (Figure 7) and then with the RAM-disk profile (Figure 8). The paper's
//! headline shapes:
//!
//! * over NFS, reads are transport-bound so all four systems cluster, while
//!   writes separate (PlainFS > EncFS > LamassuFS);
//! * on a RAM disk the CPU cost of hashing/encryption dominates, PlainFS
//!   pulls far ahead, and LamassuFS(meta-only) recovers most of the
//!   full-integrity read penalty.
//!
//! These figures reproduce the *paper's prototype*, whose data path is
//! per-block, so the mounts here pin [`SpanConfig::per_block`]. (With the
//! default span pipeline the Figure 7 write ordering inverts — LamassuFS's
//! coalesced commits issue ~3 round trips per R blocks and overtake EncFS —
//! which is exactly the improvement the `span_io` experiment measures.)

use crate::report::{write_json, Table};
use crate::setup::{mount_with_span, FsKind};
use lamassu_core::SpanConfig;
use lamassu_storage::StorageProfile;
use lamassu_workloads::{FioConfig, FioTester, Workload};
use serde::Serialize;

/// Throughput of one (file system, workload) cell.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputCell {
    /// File-system variant label.
    pub fs: String,
    /// Workload label.
    pub workload: String,
    /// Measured bandwidth in MiB/s.
    pub bandwidth_mib_s: f64,
    /// Real compute seconds.
    pub compute_s: f64,
    /// Modelled transport seconds.
    pub io_s: f64,
}

/// Runs the five workloads over the four shims under `profile`.
///
/// `figure` selects the output name ("fig7" or "fig8"); `file_size` is the
/// single test file's size in bytes.
pub fn run(figure: &str, profile: StorageProfile, file_size: u64) -> Vec<ThroughputCell> {
    let config = FioConfig {
        file_size,
        ..FioConfig::default()
    };
    let tester = FioTester::new(config);
    let mut cells = Vec::new();

    for kind in FsKind::ALL {
        let m = mount_with_span(kind, profile, 8, SpanConfig::per_block());
        tester
            .populate(m.fs.as_ref(), "/fio.dat")
            .expect("populate benchmark file");
        for workload in Workload::ALL {
            let result = tester
                .run(m.fs.as_ref(), m.store.as_ref(), "/fio.dat", workload)
                .expect("benchmark workload");
            cells.push(ThroughputCell {
                fs: kind.label().to_string(),
                workload: workload.label().to_string(),
                bandwidth_mib_s: result.bandwidth_mib_s,
                compute_s: result.compute_time.as_secs_f64(),
                io_s: result.io_time.as_secs_f64(),
            });
        }
    }

    let title = format!(
        "{}: single-file I/O throughput (MiB/s), backing store = {}",
        if figure == "fig7" {
            "Figure 7"
        } else {
            "Figure 8"
        },
        profile.name
    );
    let mut table = Table::new(
        &title,
        &[
            "workload",
            "PlainFS",
            "EncFS",
            "LamassuFS",
            "LamassuFS(meta-only)",
        ],
    );
    for workload in Workload::ALL {
        let mut row = vec![workload.label().to_string()];
        for kind in FsKind::ALL {
            let cell = cells
                .iter()
                .find(|c| c.fs == kind.label() && c.workload == workload.label())
                .expect("cell computed above");
            row.push(format!("{:.1}", cell.bandwidth_mib_s));
        }
        table.row(&row);
    }
    table.print();
    write_json(&format!("{figure}_throughput"), &cells);
    cells
}

/// Convenience accessor used by tests and the Figure 10 sweep.
pub fn bandwidth(cells: &[ThroughputCell], fs: &str, workload: &str) -> f64 {
    cells
        .iter()
        .find(|c| c.fs == fs && c.workload == workload)
        .map(|c| c.bandwidth_mib_s)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfs_shape_writes_separate_reads_cluster() {
        let cells = run("fig7", StorageProfile::nfs_1gbe(), 4 * 1024 * 1024);
        assert_eq!(cells.len(), 20);
        let plain_w = bandwidth(&cells, "PlainFS", "seq-write");
        let enc_w = bandwidth(&cells, "EncFS", "seq-write");
        let lms_w = bandwidth(&cells, "LamassuFS", "seq-write");
        assert!(plain_w > enc_w, "PlainFS writes faster than EncFS");
        assert!(enc_w > lms_w, "EncFS writes faster than LamassuFS");
        // Reads over NFS are transport-bound: LamassuFS reads stay close to
        // EncFS reads (the paper measures within ~12 %), and the read-side
        // gap to PlainFS is much smaller than the write-side gap.
        let enc_r = bandwidth(&cells, "EncFS", "seq-read");
        let plain_r = bandwidth(&cells, "PlainFS", "seq-read");
        let lms_r = bandwidth(&cells, "LamassuFS", "seq-read");
        assert!(lms_r > enc_r * 0.7, "encfs {enc_r} vs lamassu {lms_r}");
        // The paper's §4.2 claim: LamassuFS trails EncFS much more on writes
        // (~33 %) than on reads (1.6–12.4 %). The precise ratios depend on
        // the build profile, so assert only the ordering of the two gaps.
        let write_gap = enc_w / lms_w;
        let read_gap = enc_r / lms_r;
        assert!(
            write_gap > read_gap,
            "write gap {write_gap:.2} must exceed read gap {read_gap:.2}"
        );
        let _ = plain_r;
    }

    #[test]
    fn ram_disk_shape_compute_bound() {
        let cells = run("fig8", StorageProfile::ram_disk(), 4 * 1024 * 1024);
        let plain_r = bandwidth(&cells, "PlainFS", "seq-read");
        let lms_full = bandwidth(&cells, "LamassuFS", "seq-read");
        let lms_meta = bandwidth(&cells, "LamassuFS(meta-only)", "seq-read");
        // Removing the transport bottleneck exposes the crypto cost...
        assert!(
            plain_r > lms_full * 1.5,
            "plain {plain_r} vs lamassu {lms_full}"
        );
        // ...and skipping the per-block hash on reads recovers throughput.
        assert!(
            lms_meta > lms_full,
            "meta-only {lms_meta} vs full {lms_full}"
        );
    }
}
