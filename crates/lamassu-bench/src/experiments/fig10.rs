//! Figure 10: single-file throughput as the reserved-slot count R varies.
//!
//! Increasing `R` lets Lamassu batch more data-block writes behind one pair
//! of metadata writes, so write throughput improves (the paper measures a
//! ~1.6x speedup at its peak around R = 48), while read throughput sags very
//! slightly because a larger transient area means fewer keys per metadata
//! block and therefore more metadata to read per unit of data.

use crate::report::{write_json, Table};
use crate::setup::{mount, FsKind};
use lamassu_storage::StorageProfile;
use lamassu_workloads::{FioConfig, FioTester, Workload};
use serde::Serialize;

/// The R values swept in the paper's Figure 10/11.
pub const R_VALUES: [usize; 8] = [1, 2, 8, 32, 48, 52, 56, 60];

/// One (R, workload) data point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Point {
    /// Number of reserved key slots.
    pub r: usize,
    /// Workload label.
    pub workload: String,
    /// Bandwidth in MiB/s.
    pub bandwidth_mib_s: f64,
}

/// Runs the R sweep with a `file_size`-byte file on a RAM disk.
pub fn run(file_size: u64) -> Vec<Fig10Point> {
    let workloads = [
        Workload::SeqRead,
        Workload::RandRead,
        Workload::SeqWrite,
        Workload::RandWrite,
    ];
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });
    let mut points = Vec::new();

    for r in R_VALUES {
        let m = mount(FsKind::Lamassu, StorageProfile::ram_disk(), r);
        tester
            .populate(m.fs.as_ref(), "/fio.dat")
            .expect("populate");
        for workload in workloads {
            let result = tester
                .run(m.fs.as_ref(), m.store.as_ref(), "/fio.dat", workload)
                .expect("benchmark workload");
            points.push(Fig10Point {
                r,
                workload: workload.label().to_string(),
                bandwidth_mib_s: result.bandwidth_mib_s,
            });
        }
    }

    let mut table = Table::new(
        "Figure 10: LamassuFS throughput by reserved key slots R (MiB/s, RAM disk)",
        &["R", "seq-read", "rand-read", "seq-write", "rand-write"],
    );
    for r in R_VALUES {
        let get = |wl: &str| {
            points
                .iter()
                .find(|p| p.r == r && p.workload == wl)
                .map(|p| format!("{:.1}", p.bandwidth_mib_s))
                .unwrap_or_default()
        };
        table.row(&[
            r.to_string(),
            get("seq-read"),
            get("rand-read"),
            get("seq-write"),
            get("rand-write"),
        ]);
    }
    table.print();
    write_json("fig10_r_sweep_throughput", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_throughput_improves_with_batching() {
        let points = run(2 * 1024 * 1024);
        let bw = |r: usize, wl: &str| {
            points
                .iter()
                .find(|p| p.r == r && p.workload == wl)
                .unwrap()
                .bandwidth_mib_s
        };
        // R = 48 batches 48 blocks per commit vs 1: sequential writes must
        // speed up noticeably (the paper reports ~1.6x).
        assert!(
            bw(48, "seq-write") > bw(1, "seq-write") * 1.1,
            "R=48 {} vs R=1 {}",
            bw(48, "seq-write"),
            bw(1, "seq-write")
        );
        // Reads must not collapse as R grows.
        assert!(bw(60, "seq-read") > bw(1, "seq-read") * 0.5);
    }
}
