//! Cache experiment: cached vs uncached I/O under the NFS transport.
//!
//! The paper's Figure 9 shows backend I/O dominating every category except
//! `GetCEKey` once the transport is NFS rather than a RAM disk — the shims
//! pay the full round trip on every block. This experiment quantifies what
//! the `lamassu-cache` tier recovers, over the same modelled NFS-over-1GbE
//! transport, in three scenarios:
//!
//! * **re-read** — a sequentially re-read file: the second pass is served
//!   from cache, so the modelled end-to-end latency collapses to compute
//!   time (the acceptance target is ≥5× vs uncached).
//! * **cold-read** — a first, cold sequential read: read-ahead coalesces up
//!   to `read_ahead_blocks` backend round trips into one, so even a cold
//!   cache beats the uncached stack.
//! * **rmw** — random 2 KiB writes against 4 KiB backend blocks: uncached,
//!   every write pays a read-modify-write at the backend; write-back absorbs
//!   the churn in dirty blocks and flushes coalesced runs on `fsync`.

use crate::report::{write_json, Table};
use crate::setup::{mount, mount_cached, FsKind};
use lamassu_cache::CacheConfig;
use lamassu_storage::StorageProfile;
use lamassu_workloads::{FioConfig, FioResult, FioTester, Workload};
use serde::Serialize;

/// One (file system, scenario, cache mode) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CacheRow {
    /// File-system variant label.
    pub fs: String,
    /// "re-read", "cold-read" or "rmw".
    pub scenario: String,
    /// "uncached", "write-through" or "write-back".
    pub mode: String,
    /// Modelled end-to-end milliseconds (compute + virtual transport).
    pub total_ms: f64,
    /// Real compute milliseconds.
    pub compute_ms: f64,
    /// Modelled transport milliseconds.
    pub io_ms: f64,
    /// Cache hit rate of the measured phase, in percent.
    pub hit_rate_pct: f64,
    /// Backend read operations during the measured phase.
    pub backend_read_ops: u64,
    /// Backend write operations during the measured phase.
    pub backend_write_ops: u64,
    /// Uncached total over this row's total (1.0 for the uncached row).
    pub speedup_vs_uncached: f64,
}

fn row_from(
    fs: &str,
    scenario: &str,
    mode: &str,
    result: FioResult,
    uncached_total_ms: Option<f64>,
) -> CacheRow {
    let total_ms = result.total_time.as_secs_f64() * 1e3;
    CacheRow {
        fs: fs.to_string(),
        scenario: scenario.to_string(),
        mode: mode.to_string(),
        total_ms,
        compute_ms: result.compute_time.as_secs_f64() * 1e3,
        io_ms: result.io_time.as_secs_f64() * 1e3,
        hit_rate_pct: result.cache_hit_rate * 100.0,
        backend_read_ops: result.counters.read_ops,
        backend_write_ops: result.counters.write_ops,
        speedup_vs_uncached: uncached_total_ms.map_or(1.0, |u| u / total_ms.max(1e-9)),
    }
}

/// A cache sized to hold the whole benchmark file, with read-ahead on.
fn cache_config(file_size: u64, write_back: bool) -> CacheConfig {
    let blocks = (file_size / 4096).max(1) as usize * 2;
    let mut config = if write_back {
        CacheConfig::write_back(blocks)
    } else {
        CacheConfig::write_through(blocks)
    };
    config.read_ahead_blocks = 8;
    config
}

/// Runs the three scenarios with a `file_size`-byte file over the NFS
/// profile and returns every row.
pub fn run(file_size: u64) -> Vec<CacheRow> {
    let profile = StorageProfile::nfs_1gbe();
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });
    let rmw_tester = FioTester::new(FioConfig {
        file_size,
        io_size: 2048,
        ..FioConfig::default()
    });
    let mut rows = Vec::new();

    // --- re-read: warm pass measured -------------------------------------
    for kind in [FsKind::Plain, FsKind::Lamassu] {
        let uncached = {
            let m = mount(kind, profile, 8);
            tester
                .populate(m.fs.as_ref(), "/fio.dat")
                .expect("populate");
            let _cold = tester
                .run(
                    m.fs.as_ref(),
                    m.store.as_ref(),
                    "/fio.dat",
                    Workload::SeqRead,
                )
                .expect("cold read");
            tester
                .run(
                    m.fs.as_ref(),
                    m.store.as_ref(),
                    "/fio.dat",
                    Workload::SeqRead,
                )
                .expect("re-read")
        };
        let uncached_ms = uncached.total_time.as_secs_f64() * 1e3;
        rows.push(row_from(
            kind.label(),
            "re-read",
            "uncached",
            uncached,
            None,
        ));
        for write_back in [false, true] {
            let m = mount_cached(kind, profile, 8, cache_config(file_size, write_back));
            tester
                .populate(m.fs.as_ref(), "/fio.dat")
                .expect("populate");
            let _warmup = tester
                .run(
                    m.fs.as_ref(),
                    m.cache.as_ref(),
                    "/fio.dat",
                    Workload::SeqRead,
                )
                .expect("warming read");
            let warm = tester
                .run(
                    m.fs.as_ref(),
                    m.cache.as_ref(),
                    "/fio.dat",
                    Workload::SeqRead,
                )
                .expect("warm re-read");
            let mode = if write_back {
                "write-back"
            } else {
                "write-through"
            };
            rows.push(row_from(
                kind.label(),
                "re-read",
                mode,
                warm,
                Some(uncached_ms),
            ));
        }
    }

    // --- cold-read: first pass measured, read-ahead coalesces round trips -
    {
        let kind = FsKind::Plain;
        let uncached = {
            let m = mount(kind, profile, 8);
            tester
                .populate(m.fs.as_ref(), "/fio.dat")
                .expect("populate");
            tester
                .run(
                    m.fs.as_ref(),
                    m.store.as_ref(),
                    "/fio.dat",
                    Workload::SeqRead,
                )
                .expect("uncached cold read")
        };
        let uncached_ms = uncached.total_time.as_secs_f64() * 1e3;
        rows.push(row_from(
            kind.label(),
            "cold-read",
            "uncached",
            uncached,
            None,
        ));
        // Write-through does not allocate on writes, so the cache is still
        // cold after populate and the measured pass exercises read-ahead.
        let m = mount_cached(kind, profile, 8, cache_config(file_size, false));
        tester
            .populate(m.fs.as_ref(), "/fio.dat")
            .expect("populate");
        let cold = tester
            .run(
                m.fs.as_ref(),
                m.cache.as_ref(),
                "/fio.dat",
                Workload::SeqRead,
            )
            .expect("cached cold read");
        rows.push(row_from(
            kind.label(),
            "cold-read",
            "write-through",
            cold,
            Some(uncached_ms),
        ));
    }

    // --- rmw: random 2 KiB writes against 4 KiB backend blocks ------------
    {
        let kind = FsKind::Plain;
        let uncached = {
            let m = mount(kind, profile, 8);
            rmw_tester
                .populate(m.fs.as_ref(), "/fio.dat")
                .expect("populate");
            rmw_tester
                .run(
                    m.fs.as_ref(),
                    m.store.as_ref(),
                    "/fio.dat",
                    Workload::RandWrite,
                )
                .expect("uncached rmw")
        };
        let uncached_ms = uncached.total_time.as_secs_f64() * 1e3;
        rows.push(row_from(kind.label(), "rmw", "uncached", uncached, None));
        let m = mount_cached(kind, profile, 8, cache_config(file_size, true));
        rmw_tester
            .populate(m.fs.as_ref(), "/fio.dat")
            .expect("populate");
        let cached = rmw_tester
            .run(
                m.fs.as_ref(),
                m.cache.as_ref(),
                "/fio.dat",
                Workload::RandWrite,
            )
            .expect("write-back rmw");
        rows.push(row_from(
            kind.label(),
            "rmw",
            "write-back",
            cached,
            Some(uncached_ms),
        ));
    }

    let mut table = Table::new(
        "Cache: cached vs uncached I/O over the NFS profile",
        &[
            "fs", "scenario", "mode", "total ms", "I/O ms", "hit rate", "rd ops", "wr ops",
            "speedup",
        ],
    );
    for r in &rows {
        table.row(&[
            r.fs.clone(),
            r.scenario.clone(),
            r.mode.clone(),
            format!("{:.1}", r.total_ms),
            format!("{:.1}", r.io_ms),
            format!("{:.0}%", r.hit_rate_pct),
            format!("{}", r.backend_read_ops),
            format!("{}", r.backend_write_ops),
            format!("{:.1}x", r.speedup_vs_uncached),
        ]);
    }
    table.print();
    write_json("cache_effect", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [CacheRow], fs: &str, scenario: &str, mode: &str) -> &'a CacheRow {
        rows.iter()
            .find(|r| r.fs == fs && r.scenario == scenario && r.mode == mode)
            .unwrap_or_else(|| panic!("missing row {fs}/{scenario}/{mode}"))
    }

    #[test]
    fn cached_re_read_meets_the_speedup_target() {
        let rows = run(2 * 1024 * 1024);

        // Acceptance target: warm re-read over NFS is ≥5× faster than
        // uncached and the new counters report a nonzero hit rate.
        for mode in ["write-through", "write-back"] {
            let r = find(&rows, "PlainFS", "re-read", mode);
            assert!(
                r.speedup_vs_uncached >= 5.0,
                "{mode} re-read speedup only {:.1}x",
                r.speedup_vs_uncached
            );
            assert!(r.hit_rate_pct > 0.0, "{mode} hit rate is zero");
        }
        // LamassuFS still pays its (real, machine-dependent) crypto compute
        // on a warm re-read, so assert on the modelled transport time the
        // cache eliminates rather than a wall-clock ratio: ≥5× less backend
        // time, with a nonzero hit rate.
        let lam_uncached = find(&rows, "LamassuFS", "re-read", "uncached");
        let lam = find(&rows, "LamassuFS", "re-read", "write-back");
        assert!(lam.io_ms * 5.0 <= lam_uncached.io_ms, "{:?}", lam);
        assert!(lam.hit_rate_pct > 0.0);
        assert!(lam.speedup_vs_uncached > 1.0, "{:?}", lam);

        // Read-ahead makes even the cold pass cheaper: fewer backend round
        // trips than the uncached stack issues.
        let cold_u = find(&rows, "PlainFS", "cold-read", "uncached");
        let cold_c = find(&rows, "PlainFS", "cold-read", "write-through");
        assert!(cold_c.backend_read_ops * 2 < cold_u.backend_read_ops);
        assert!(cold_c.speedup_vs_uncached > 1.5, "{:?}", cold_c);

        // Write-back absorbs read-modify-write churn and coalesces flushes.
        let rmw_u = find(&rows, "PlainFS", "rmw", "uncached");
        let rmw_c = find(&rows, "PlainFS", "rmw", "write-back");
        assert!(rmw_c.speedup_vs_uncached >= 2.0, "{:?}", rmw_c);
        assert!(rmw_c.backend_write_ops * 4 < rmw_u.backend_write_ops);
    }
}
