//! Figure 9: LamassuFS write/read latency breakdown on a RAM disk.
//!
//! The LamassuFS read and write paths are instrumented into the paper's five
//! categories (Encrypt, Decrypt, GetCEKey, I/O, Misc). The paper's finding is
//! that GetCEKey — dominated by the per-block SHA-256 — is the largest
//! contributor (58 % of seq-write and 80 % of seq-read latency on their
//! AES-NI hardware), and that dropping the data-integrity hash from the read
//! path ("meta-only") removes most of the read-side cost.
//!
//! Absolute shares differ here because our software AES has no AES-NI (see
//! EXPERIMENTS.md), but the structural findings — hashing is a top
//! contributor on the write path, and the full-integrity read path pays a
//! hash the meta-only path does not — are reproduced.
//!
//! This figure reports category *means* (total time / ops), matching the
//! paper's bars. Since the profiler's categories are histogram-backed
//! (`Profiler::category_histogram`), the same instrumented run also yields
//! per-category percentiles — the [`super::latency`] experiment reports the
//! distribution view this mean-based figure cannot show.

use crate::report::{write_json, Table};
use crate::setup::{mount, FsKind};
use lamassu_storage::StorageProfile;
use lamassu_workloads::{FioConfig, FioTester, Workload};
use serde::Serialize;

/// Latency breakdown of one (variant, workload) bar of Figure 9.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// "LamassuFS" or "LamassuFS(meta-only)".
    pub fs: String,
    /// "seq-write" or "seq-read".
    pub workload: String,
    /// Per-operation latency attributed to each category, in microseconds.
    pub encrypt_us: f64,
    /// AES decryption share.
    pub decrypt_us: f64,
    /// SHA-256 + KDF share.
    pub get_ce_key_us: f64,
    /// Backend I/O share.
    pub io_us: f64,
    /// Block-cache management share (zero on these uncached mounts; the
    /// cache experiment reports cached breakdowns).
    pub cache_us: f64,
    /// Span-planning share (the `Plan` category of the span pipeline).
    pub plan_us: f64,
    /// Distribution-tier routing share (zero on these unrouted mounts; the
    /// scale-out experiment exercises routed mounts).
    pub route_us: f64,
    /// Remainder.
    pub misc_us: f64,
    /// GetCEKey share of the total, in percent.
    pub get_ce_key_pct: f64,
    /// Block-buffer pool hit rate of the mount so far, in percent (the
    /// zero-allocation data path runs this to ~100 once warm; see
    /// `lamassu-core::pool`).
    pub pool_hit_pct: f64,
    /// Share of AES blocks this workload dispatched to the wide fixsliced
    /// kernel (the rest fell back to the scalar T-table path), in percent.
    pub wide_block_pct: f64,
    /// Share of convergent-key derivations that went through the 4-lane
    /// SHA-256 path, in percent.
    pub wide_derive_pct: f64,
}

/// Percentage `wide / (wide + scalar)`, or 0 when neither path ran.
fn wide_pct(wide: u64, scalar: u64) -> f64 {
    if wide + scalar == 0 {
        0.0
    } else {
        wide as f64 * 100.0 / (wide + scalar) as f64
    }
}

/// Runs the Figure 9 experiment with a `file_size`-byte file on a RAM disk.
pub fn run(file_size: u64) -> Vec<Fig9Row> {
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });
    let mut rows = Vec::new();

    for kind in [FsKind::Lamassu, FsKind::LamassuMetaOnly] {
        let m = mount(kind, StorageProfile::ram_disk(), 8);
        tester
            .populate(m.fs.as_ref(), "/fio.dat")
            .expect("populate");
        for workload in [Workload::SeqWrite, Workload::SeqRead] {
            let profiler = m.profiler.clone();
            profiler.reset();
            let (wb0, sb0, wd0, sd0) = lamassu_crypto::stats::snapshot();
            let result = tester
                .run(m.fs.as_ref(), m.store.as_ref(), "/fio.dat", workload)
                .expect("benchmark workload");
            let (wb1, sb1, wd1, sd1) = lamassu_crypto::stats::snapshot();
            let breakdown = profiler.breakdown(result.total_time);
            let per_op = |d: std::time::Duration| d.as_secs_f64() * 1e6 / result.ops as f64;
            rows.push(Fig9Row {
                fs: kind.label().to_string(),
                workload: workload.label().to_string(),
                encrypt_us: per_op(breakdown.encrypt),
                decrypt_us: per_op(breakdown.decrypt),
                get_ce_key_us: per_op(breakdown.get_ce_key),
                io_us: per_op(breakdown.io),
                cache_us: per_op(breakdown.cache),
                plan_us: per_op(breakdown.plan),
                route_us: per_op(breakdown.route),
                misc_us: per_op(breakdown.misc),
                get_ce_key_pct: breakdown.get_ce_key_fraction() * 100.0,
                pool_hit_pct: profiler.pool_stats().hit_rate() * 100.0,
                wide_block_pct: wide_pct(wb1 - wb0, sb1 - sb0),
                wide_derive_pct: wide_pct(wd1 - wd0, sd1 - sd0),
            });
        }
    }

    let mut table = Table::new(
        "Figure 9: LamassuFS latency breakdown per 4 KiB op on a RAM disk (us)",
        &[
            "variant",
            "workload",
            "Encrypt",
            "Decrypt",
            "GetCEKey",
            "I/O",
            "Cache",
            "Plan",
            "Route",
            "Misc",
            "GetCEKey %",
            "Pool hit %",
            "Wide AES %",
            "Wide KDF %",
        ],
    );
    for r in &rows {
        table.row(&[
            r.fs.clone(),
            r.workload.clone(),
            format!("{:.1}", r.encrypt_us),
            format!("{:.1}", r.decrypt_us),
            format!("{:.1}", r.get_ce_key_us),
            format!("{:.1}", r.io_us),
            format!("{:.1}", r.cache_us),
            format!("{:.1}", r.plan_us),
            format!("{:.1}", r.route_us),
            format!("{:.1}", r.misc_us),
            format!("{:.0}%", r.get_ce_key_pct),
            format!("{:.0}%", r.pool_hit_pct),
            format!("{:.0}%", r.wide_block_pct),
            format!("{:.0}%", r.wide_derive_pct),
        ]);
    }
    table.print();
    write_json("fig9_latency_breakdown", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shape() {
        let rows = run(2 * 1024 * 1024);
        assert_eq!(rows.len(), 4);
        let find = |fs: &str, wl: &str| {
            rows.iter()
                .find(|r| r.fs == fs && r.workload == wl)
                .unwrap()
                .clone()
        };
        // The write path always pays GetCEKey; the full-integrity read path
        // pays it too, while the meta-only read path skips it.
        let full_write = find("LamassuFS", "seq-write");
        assert!(full_write.get_ce_key_us > 0.5);
        let full_read = find("LamassuFS", "seq-read");
        let meta_read = find("LamassuFS(meta-only)", "seq-read");
        assert!(full_read.get_ce_key_us > meta_read.get_ce_key_us * 3.0);
        // Decryption dominates reads, encryption dominates writes.
        assert!(full_read.decrypt_us > full_read.encrypt_us);
        assert!(full_write.encrypt_us > full_write.decrypt_us);
    }
}
