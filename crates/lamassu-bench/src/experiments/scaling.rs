//! Scaling experiment: multi-job throughput over the NFS profile.
//!
//! The whole stack was refactored for genuine multi-client concurrency:
//! reads run under shared per-file locks, the modelled transport overlaps
//! concurrent round trips across its parallel channels, and the store's
//! object map is sharded. This experiment measures what that buys: fio-style
//! `numjobs` sweeps (1, 2, 4, 8 jobs) of 4 KiB random reads on all four
//! shims over the NFS profile, in both layouts — every job hammering **one
//! shared file** (the contended case the shared-read locking unlocks) and
//! each job on **its own private file**.
//!
//! The headline number (asserted by the release-mode perf-shape test and a
//! CI step): shared-file random reads on LamassuFS speed up **≥ 2x** from
//! 1 job to 4 jobs, because the four jobs' backend round trips overlap on
//! the 8-wide modelled transport while the shared `RwLock` lets their
//! decrypt + integrity pipelines run in parallel.

use crate::report::{write_json, Table};
use crate::setup::{mount, FsKind};
use lamassu_storage::StorageProfile;
use lamassu_workloads::{FioConfig, FioTester, JobLayout, Workload};
use serde::Serialize;

/// The job counts the sweep visits.
pub const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (file system, layout, job count) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// File-system variant label.
    pub fs: String,
    /// "shared" (one file, all jobs) or "private" (one file per job).
    pub layout: String,
    /// Number of concurrent jobs.
    pub jobs: usize,
    /// Aggregate throughput in MiB/s (total bytes over slowest-job wall
    /// plus transport makespan).
    pub bandwidth_mib_s: f64,
    /// Slowest job's wall (compute) milliseconds.
    pub compute_ms: f64,
    /// Modelled transport makespan milliseconds.
    pub io_ms: f64,
    /// Aggregate bandwidth relative to the same configuration at 1 job.
    pub speedup_vs_1job: f64,
}

/// Runs the sweep with a `file_size`-byte file per target over the NFS
/// profile and returns one row per (shim, layout, jobs) point.
pub fn run(file_size: u64) -> Vec<ScalingRow> {
    let profile = StorageProfile::nfs_1gbe();
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });
    let mut rows = Vec::new();
    for kind in FsKind::ALL {
        for layout in [JobLayout::SharedFile, JobLayout::PrivateFiles] {
            let mut base_bw = None;
            for jobs in JOB_COUNTS {
                // A fresh mount per point: no state (metadata caches, open
                // descriptors) leaks between job counts.
                let m = mount(kind, profile, 8);
                let result = tester
                    .run_jobs(
                        m.fs.as_ref(),
                        m.store.as_ref() as &dyn lamassu_storage::ObjectStore,
                        "/scale.dat",
                        Workload::RandRead,
                        jobs,
                        layout,
                    )
                    .expect("scaling run");
                let bw = result.aggregate.bandwidth_mib_s;
                let base = *base_bw.get_or_insert(bw);
                rows.push(ScalingRow {
                    fs: kind.label().to_string(),
                    layout: layout.label().to_string(),
                    jobs,
                    bandwidth_mib_s: bw,
                    compute_ms: result.aggregate.compute_time.as_secs_f64() * 1e3,
                    io_ms: result.aggregate.io_time.as_secs_f64() * 1e3,
                    speedup_vs_1job: bw / base.max(1e-12),
                });
            }
        }
    }

    let mut table = Table::new(
        "Scaling: multi-job 4 KiB random reads (NFS profile)",
        &[
            "fs",
            "layout",
            "jobs",
            "MiB/s",
            "compute ms",
            "I/O ms",
            "vs 1 job",
        ],
    );
    for r in &rows {
        table.row(&[
            r.fs.clone(),
            r.layout.clone(),
            format!("{}", r.jobs),
            format!("{:.1}", r.bandwidth_mib_s),
            format!("{:.1}", r.compute_ms),
            format!("{:.1}", r.io_ms),
            format!("{:.2}x", r.speedup_vs_1job),
        ]);
    }
    table.print();
    write_json("scaling", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [ScalingRow], fs: &str, layout: &str, jobs: usize) -> &'a ScalingRow {
        rows.iter()
            .find(|r| r.fs == fs && r.layout == layout && r.jobs == jobs)
            .unwrap_or_else(|| panic!("missing row {fs}/{layout}/{jobs}"))
    }

    #[test]
    fn shared_file_rand_read_scales_at_least_2x_from_1_to_4_jobs() {
        // The acceptance shape: with shared-read per-file locking and the
        // overlap-aware transport, 4 jobs randomly reading one shared file
        // through LamassuFS (full integrity) over the NFS profile deliver at
        // least twice the aggregate bandwidth of 1 job.
        let rows = run(4 * 1024 * 1024);

        let one = find(&rows, "LamassuFS", "shared", 1);
        let four = find(&rows, "LamassuFS", "shared", 4);
        assert!(
            four.bandwidth_mib_s >= 2.0 * one.bandwidth_mib_s,
            "shared-file LamassuFS rand-read: 4 jobs {:.1} MiB/s vs 1 job {:.1} MiB/s",
            four.bandwidth_mib_s,
            one.bandwidth_mib_s
        );

        // Every shim must scale in both layouts — the private-file case has
        // no shared state at all, so anything below ~2x there would mean a
        // serialization bug somewhere in the stack.
        for kind in ["PlainFS", "EncFS", "LamassuFS", "LamassuFS(meta-only)"] {
            for layout in ["shared", "private"] {
                let one = find(&rows, kind, layout, 1);
                let four = find(&rows, kind, layout, 4);
                assert!(
                    four.bandwidth_mib_s >= 1.5 * one.bandwidth_mib_s,
                    "{kind}/{layout}: 4 jobs {:.1} MiB/s vs 1 job {:.1} MiB/s",
                    four.bandwidth_mib_s,
                    one.bandwidth_mib_s
                );
            }
        }
    }
}
