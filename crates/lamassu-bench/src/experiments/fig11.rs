//! Figure 11: storage efficiency (share of data blocks) as R varies.
//!
//! With `N(R)` keys per metadata block, a fully deduplicated file with
//! redundancy α keeps `(1 − α)·N` unique data blocks per segment plus one
//! metadata block that never deduplicates, so the share of useful data blocks
//! on the backend is `(1 − α)·N / ((1 − α)·N + 1)`. The figure is analytic in
//! the paper's sense (it follows directly from the layout); this experiment
//! computes the analytic grid *and* validates a sample of points by actually
//! writing synthetic files through LamassuFS and counting blocks on the
//! deduplicating store.

use crate::experiments::write_file;
use crate::report::{write_json, Table};
use crate::setup::{mount, FsKind};
use lamassu_format::Geometry;
use lamassu_storage::StorageProfile;
use lamassu_workloads::SyntheticSpec;
use serde::Serialize;

/// The R values swept (same as Figure 10).
pub use super::fig10::R_VALUES;

/// One (R, α) cell of Figure 11.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Point {
    /// Number of reserved key slots.
    pub r: usize,
    /// Redundancy fraction α of the plaintext file.
    pub alpha: f64,
    /// Analytic percentage of data blocks in the deduplicated encrypted file.
    pub analytic_data_pct: f64,
    /// Measured percentage (only for the sampled validation points).
    pub measured_data_pct: Option<f64>,
}

/// Computes the analytic value for one (R, α) cell.
pub fn analytic(r: usize, alpha: f64) -> f64 {
    let n = Geometry::new(4096, r)
        .expect("R values in the sweep are valid")
        .keys_per_metadata_block() as f64;
    let unique = (1.0 - alpha) * n;
    unique / (unique + 1.0) * 100.0
}

/// Runs the Figure 11 experiment. `measure_file_size` is the synthetic file
/// size used for the measured validation points.
pub fn run(measure_file_size: u64) -> Vec<Fig11Point> {
    let alphas = [0.0, 0.10, 0.20, 0.30, 0.40, 0.50];
    let measured_rs = [1usize, 8, 32, 60];
    let measured_alphas = [0.0f64, 0.30, 0.50];
    let mut points = Vec::new();

    for r in R_VALUES {
        for alpha in alphas {
            let measured = if measured_rs.contains(&r)
                && measured_alphas.iter().any(|a| (a - alpha).abs() < 1e-9)
            {
                Some(measure(r, alpha, measure_file_size))
            } else {
                None
            };
            points.push(Fig11Point {
                r,
                alpha,
                analytic_data_pct: analytic(r, alpha),
                measured_data_pct: measured,
            });
        }
    }

    let mut table = Table::new(
        "Figure 11: % data blocks in an encrypted file (analytic, measured in brackets)",
        &["R", "0%", "10%", "20%", "30%", "40%", "50%"],
    );
    for r in R_VALUES {
        let mut row = vec![r.to_string()];
        for alpha in alphas {
            let p = points
                .iter()
                .find(|p| p.r == r && (p.alpha - alpha).abs() < 1e-9)
                .expect("cell computed above");
            row.push(match p.measured_data_pct {
                Some(m) => format!("{:.2} [{:.2}]", p.analytic_data_pct, m),
                None => format!("{:.2}", p.analytic_data_pct),
            });
        }
        table.row(&row);
    }
    table.print();
    write_json("fig11_r_sweep_efficiency", &points);
    points
}

/// Writes a synthetic file through LamassuFS with the given R and measures
/// the share of (deduplicated) data blocks on the backend.
fn measure(r: usize, alpha: f64, file_size: u64) -> f64 {
    let m = mount(FsKind::Lamassu, StorageProfile::instant(), r);
    let spec = SyntheticSpec::new(file_size, alpha, 11_000 + r as u64);
    let data = spec.generate();
    write_file(m.fs.as_ref(), "/dataset.bin", &data);
    let geometry = Geometry::new(4096, r).expect("valid geometry");
    let metadata_blocks = geometry.segments_for_len(data.len() as u64);
    let unique_total = m.store.run_dedup().unique_blocks;
    let unique_data = unique_total.saturating_sub(metadata_blocks);
    unique_data as f64 / (unique_data + metadata_blocks) as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_paper_reference_points() {
        // R = 8, alpha = 0: 118 / 119 = 99.16 %; R = 1: 125 / 126 = 99.21 %.
        assert!((analytic(8, 0.0) - 99.16).abs() < 0.01);
        assert!((analytic(1, 0.0) - 99.21).abs() < 0.01);
        // Efficiency decreases with both R and alpha.
        assert!(analytic(60, 0.0) < analytic(1, 0.0));
        assert!(analytic(8, 0.5) < analytic(8, 0.0));
    }

    #[test]
    fn measured_points_track_analytic() {
        let points = run(4 * 1024 * 1024);
        let measured: Vec<_> = points
            .iter()
            .filter(|p| p.measured_data_pct.is_some())
            .collect();
        assert!(!measured.is_empty());
        for p in measured {
            let m = p.measured_data_pct.unwrap();
            assert!(
                (m - p.analytic_data_pct).abs() < 0.75,
                "R={} alpha={}: measured {} vs analytic {}",
                p.r,
                p.alpha,
                m,
                p.analytic_data_pct
            );
        }
    }
}
