//! Figure 6: relative disk usage after deduplication vs file redundancy α.
//!
//! A synthetic file with redundancy α is copied through EncFS, PlainFS and
//! LamassuFS onto separate deduplicating volumes; deduplication is then run
//! and `df`-style usage compared. The paper's result: EncFS stays at 100 %
//! (nothing deduplicates), PlainFS lands exactly at `(1 − α)`, and LamassuFS
//! tracks PlainFS with a small constant metadata overhead whose *relative*
//! share grows as α grows.

use crate::experiments::write_file;
use crate::report::{write_json, Table};
use crate::setup::{mount, FsKind};
use lamassu_storage::StorageProfile;
use lamassu_workloads::SyntheticSpec;
use serde::Serialize;

/// One α row of Figure 6.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig6Row {
    /// Redundancy fraction α of the input file.
    pub alpha: f64,
    /// Relative disk usage (%) after dedup through EncFS.
    pub encfs_pct: f64,
    /// Relative disk usage (%) after dedup through PlainFS.
    pub plainfs_pct: f64,
    /// Relative disk usage (%) after dedup through LamassuFS.
    pub lamassufs_pct: f64,
    /// LamassuFS overhead relative to PlainFS on *deduplicated* storage
    /// (`(lamassu_after - plain_after) / plain_after`), the 1.01 %–1.81 %
    /// series quoted in §4.1, which grows inversely with `(1 − α)`.
    pub lamassu_overhead_pct: f64,
}

/// Runs the Figure 6 experiment with `file_size` bytes per synthetic file.
pub fn run(file_size: u64) -> Vec<Fig6Row> {
    let alphas = [0.10, 0.20, 0.30, 0.40, 0.50];
    let mut rows = Vec::new();

    for (i, alpha) in alphas.iter().enumerate() {
        let spec = SyntheticSpec::new(file_size, *alpha, 6000 + i as u64);
        let data = spec.generate();
        let plaintext_bytes = ((data.len() as u64).div_ceil(4096) * 4096) as f64;
        let mut after = [0.0f64; 3];
        for (j, kind) in [FsKind::Enc, FsKind::Plain, FsKind::Lamassu]
            .iter()
            .enumerate()
        {
            let m = mount(*kind, StorageProfile::instant(), 8);
            write_file(m.fs.as_ref(), "/dataset.bin", &data);
            after[j] = m.store.usage().used_after_dedup as f64;
        }
        rows.push(Fig6Row {
            alpha: *alpha,
            // Relative usage is measured against the undeduplicated plaintext
            // footprint, matching the paper's "relative disk usage" axis.
            encfs_pct: after[0] / plaintext_bytes * 100.0,
            plainfs_pct: after[1] / plaintext_bytes * 100.0,
            lamassufs_pct: after[2] / plaintext_bytes * 100.0,
            lamassu_overhead_pct: (after[2] - after[1]) / after[1] * 100.0,
        });
    }

    let mut table = Table::new(
        "Figure 6: relative disk usage after deduplication (%)",
        &["alpha", "EncFS", "PlainFS", "LamassuFS", "Lamassu overhead"],
    );
    for r in &rows {
        table.row(&[
            format!("{:.0}%", r.alpha * 100.0),
            format!("{:.2}", r.encfs_pct),
            format!("{:.2}", r.plainfs_pct),
            format!("{:.2}", r.lamassufs_pct),
            format!("{:.2}", r.lamassu_overhead_pct),
        ]);
    }
    table.print();
    write_json("fig6_storage_efficiency", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        // A small file is enough to verify the shape: EncFS ~100 %, PlainFS
        // ~= (1 - alpha) * 100, LamassuFS within a couple of percent above
        // PlainFS, overhead growing with alpha.
        let rows = run(4 * 1024 * 1024);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.encfs_pct > 99.0, "EncFS never deduplicates");
            let expected_plain = (1.0 - r.alpha) * 100.0;
            assert!(
                (r.plainfs_pct - expected_plain).abs() < 1.5,
                "PlainFS {} vs expected {}",
                r.plainfs_pct,
                expected_plain
            );
            assert!(r.lamassufs_pct > r.plainfs_pct);
            assert!(r.lamassu_overhead_pct < 3.0);
        }
        assert!(
            rows[4].lamassu_overhead_pct >= rows[0].lamassu_overhead_pct,
            "relative metadata overhead grows with alpha"
        );
    }
}
