//! Table 1: storage efficiency with (synthetic) VM images.
//!
//! Each of the five VirtualBox images from the paper is replaced by a
//! synthetic file with the same size and duplicate-block fraction (see
//! DESIGN.md §3), copied through PlainFS and LamassuFS onto separate
//! deduplicating volumes. The table reports the percentage of blocks
//! deduplicated through each shim and LamassuFS's space overhead. EncFS is
//! omitted just as in the paper ("EncFS results have \[been\] omitted because
//! they were all zero") — a column in the JSON report confirms the zero.

use crate::experiments::write_file;
use crate::report::{write_json, Table};
use crate::setup::{mount, FsKind};
use lamassu_storage::StorageProfile;
use lamassu_workloads::VM_IMAGES;
use serde::Serialize;

/// One VM-image row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Image name.
    pub image: String,
    /// Synthetic image size in bytes after scaling.
    pub size_bytes: u64,
    /// Percentage of blocks deduplicated when stored through PlainFS.
    pub plainfs_dedup_pct: f64,
    /// Percentage of blocks deduplicated when stored through LamassuFS.
    pub lamassufs_dedup_pct: f64,
    /// Percentage of blocks deduplicated when stored through EncFS
    /// (expected to be ~0; omitted from the printed table as in the paper).
    pub encfs_dedup_pct: f64,
    /// LamassuFS space overhead relative to PlainFS on deduplicated storage.
    pub space_overhead_pct: f64,
}

/// Runs the Table 1 experiment; `scale` divides the real image sizes.
pub fn run(scale: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for (i, image) in VM_IMAGES.iter().enumerate() {
        let spec = image.to_synthetic(scale, 7100 + i as u64);
        let data = spec.generate();
        let mut dedup_pct = [0.0f64; 3];
        let mut after = [0.0f64; 3];
        for (j, kind) in [FsKind::Plain, FsKind::Lamassu, FsKind::Enc]
            .iter()
            .enumerate()
        {
            let m = mount(*kind, StorageProfile::instant(), 8);
            write_file(m.fs.as_ref(), "/image.vdi", &data);
            let usage = m.store.usage();
            dedup_pct[j] = usage.deduplicated_pct;
            after[j] = usage.used_after_dedup as f64;
        }
        rows.push(Table1Row {
            image: image.name.to_string(),
            size_bytes: spec.size_bytes,
            plainfs_dedup_pct: dedup_pct[0],
            lamassufs_dedup_pct: dedup_pct[1],
            encfs_dedup_pct: dedup_pct[2],
            space_overhead_pct: (after[1] - after[0]) / after[0] * 100.0,
        });
    }

    let mut table = Table::new(
        "Table 1: storage efficiency with VM images (synthetic stand-ins)",
        &[
            "VM image",
            "Size (MiB)",
            "% dedup PlainFS",
            "% dedup LamassuFS",
            "Space overhead",
        ],
    );
    for r in &rows {
        table.row(&[
            r.image.clone(),
            format!("{}", r.size_bytes / (1024 * 1024)),
            format!("{:.2}%", r.plainfs_dedup_pct),
            format!("{:.2}%", r.lamassufs_dedup_pct),
            format!("{:.2}%", r.space_overhead_pct),
        ]);
    }
    table.print();
    write_json("table1_vm_images", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        // Aggressive scaling keeps the test quick; ratios are scale-free.
        let rows = run(2048);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            // LamassuFS deduplicates almost as much as PlainFS…
            assert!(
                (r.plainfs_dedup_pct - r.lamassufs_dedup_pct).abs() < 2.0,
                "{}: plain {} vs lamassu {}",
                r.image,
                r.plainfs_dedup_pct,
                r.lamassufs_dedup_pct
            );
            // …with a small (<~2.5 %) space overhead, while EncFS saves ~nothing.
            assert!(
                r.space_overhead_pct > 0.0 && r.space_overhead_pct < 2.5,
                "{}",
                r.image
            );
            assert!(r.encfs_dedup_pct < 1.0, "{}", r.image);
            // The dedup fraction roughly matches the image profile.
            let expected = VM_IMAGES
                .iter()
                .find(|v| v.name == r.image)
                .unwrap()
                .dedup_fraction
                * 100.0;
            assert!((r.plainfs_dedup_pct - expected).abs() < 3.0, "{}", r.image);
        }
    }
}
