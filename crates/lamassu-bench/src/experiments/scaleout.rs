//! Scale-out experiment: throughput vs backend count under the routed tier.
//!
//! The paper's shims are backend-agnostic — "a configurable directory" —
//! which is what lets the `lamassu-dist` tier slot a whole cluster of
//! backends underneath without the shims noticing. This experiment measures
//! what distribution buys: sequential 4 KiB reads and writes on the shims
//! over the NFS profile, sweeping the backend count N ∈ {1, 2, 4, 8} at
//! replication factors R ∈ {1, 2}.
//!
//! Block-range placement stripes each file across the cluster, and the
//! routed tier's modelled I/O time is the *busiest member's* makespan
//! (independent servers), so sequential-read bandwidth grows with N — the
//! headline shape, asserted by the release perf test and a CI step:
//! LamassuFS seq-read at R = 1 speeds up **≥ 2x** from 1 backend to 4.
//! R = 2 pays the fan-out on writes (every unit goes to two members) while
//! reads stay near R = 1, and the per-member op counters expose how evenly
//! the ring spreads load.

use crate::report::{write_json, Table};
use crate::setup::{mount_routed, FsKind};
use lamassu_dist::{DistConfig, Granularity};
use lamassu_storage::{ObjectStore, StorageProfile};
use lamassu_workloads::{FioConfig, FioTester, Workload};
use serde::Serialize;

/// The backend counts the sweep visits.
pub const BACKEND_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The replication factors the sweep visits.
pub const REPLICAS: [usize; 2] = [1, 2];

/// Placement-unit size: fine enough that even the small CI file stripes
/// across all eight backends with low imbalance.
pub const UNIT_BYTES: u64 = 128 * 1024;

/// One (file system, workload, backends, replicas) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleoutRow {
    /// File-system variant label.
    pub fs: String,
    /// "seq-read" or "seq-write".
    pub workload: String,
    /// Number of member backends below the router.
    pub backends: usize,
    /// Replication factor.
    pub replicas: usize,
    /// Throughput in MiB/s (compute plus busiest-member transport time).
    pub bandwidth_mib_s: f64,
    /// Modelled transport makespan milliseconds (busiest member).
    pub io_ms: f64,
    /// Bandwidth relative to the same configuration at 1 backend.
    pub speedup_vs_1: f64,
    /// Busiest member's share of the cluster's read+write ops, in percent —
    /// 100/N would be a perfectly even spread.
    pub max_member_op_pct: f64,
}

/// Runs the sweep with a `file_size`-byte file over the NFS profile and
/// returns one row per (shim, workload, backends, replicas) point.
pub fn run(file_size: u64) -> Vec<ScaleoutRow> {
    let profile = StorageProfile::nfs_1gbe();
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });
    let mut rows = Vec::new();
    for kind in [FsKind::Plain, FsKind::Lamassu] {
        for workload in [Workload::SeqRead, Workload::SeqWrite] {
            for &replicas in &REPLICAS {
                let mut base_bw = None;
                for &backends in &BACKEND_COUNTS {
                    let config =
                        DistConfig::new(replicas).granularity(Granularity::BlockRange(UNIT_BYTES));
                    let m = mount_routed(kind, profile, 8, backends, config);
                    tester
                        .populate(m.fs.as_ref(), "/scale.dat")
                        .expect("populate");
                    m.router.reset_io_accounting();
                    let result = tester
                        .run(
                            m.fs.as_ref(),
                            m.router.as_ref() as &dyn lamassu_storage::ObjectStore,
                            "/scale.dat",
                            workload,
                        )
                        .expect("scaleout run");
                    let per_member = m.router.member_io_counters();
                    let ops = |c: &lamassu_storage::IoCounters| c.read_ops + c.write_ops;
                    let total_ops: u64 = per_member.iter().map(|(_, c)| ops(c)).sum();
                    let max_ops = per_member.iter().map(|(_, c)| ops(c)).max().unwrap_or(0);
                    let bw = result.bandwidth_mib_s;
                    let base = *base_bw.get_or_insert(bw);
                    rows.push(ScaleoutRow {
                        fs: kind.label().to_string(),
                        workload: workload.label().to_string(),
                        backends,
                        replicas,
                        bandwidth_mib_s: bw,
                        io_ms: result.io_time.as_secs_f64() * 1e3,
                        speedup_vs_1: bw / base.max(1e-12),
                        max_member_op_pct: if total_ops == 0 {
                            0.0
                        } else {
                            max_ops as f64 / total_ops as f64 * 100.0
                        },
                    });
                }
            }
        }
    }

    let mut table = Table::new(
        "Scale-out: routed-tier throughput vs backend count (NFS profile)",
        &[
            "fs",
            "workload",
            "N",
            "R",
            "MiB/s",
            "I/O ms",
            "vs N=1",
            "max member %",
        ],
    );
    for r in &rows {
        table.row(&[
            r.fs.clone(),
            r.workload.clone(),
            format!("{}", r.backends),
            format!("{}", r.replicas),
            format!("{:.1}", r.bandwidth_mib_s),
            format!("{:.1}", r.io_ms),
            format!("{:.2}x", r.speedup_vs_1),
            format!("{:.0}%", r.max_member_op_pct),
        ]);
    }
    table.print();
    write_json("scaleout", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(
        rows: &'a [ScaleoutRow],
        fs: &str,
        wl: &str,
        n: usize,
        r: usize,
    ) -> &'a ScaleoutRow {
        rows.iter()
            .find(|row| {
                row.fs == fs && row.workload == wl && row.backends == n && row.replicas == r
            })
            .unwrap_or_else(|| panic!("missing row {fs}/{wl}/N={n}/R={r}"))
    }

    #[test]
    fn seq_read_bandwidth_scales_at_least_2x_from_1_to_4_backends() {
        // The acceptance shape: striping sequential reads across 4 modelled
        // NFS backends at R = 1 must at least double LamassuFS bandwidth,
        // because each member serves ~1/4 of the units on its own transport
        // and the routed makespan is the busiest member's time.
        let rows = run(8 * 1024 * 1024);
        for fs in ["PlainFS", "LamassuFS"] {
            let one = find(&rows, fs, "seq-read", 1, 1);
            let four = find(&rows, fs, "seq-read", 4, 1);
            assert!(
                four.bandwidth_mib_s >= 2.0 * one.bandwidth_mib_s,
                "{fs} seq-read: 4 backends {:.1} MiB/s vs 1 backend {:.1} MiB/s",
                four.bandwidth_mib_s,
                one.bandwidth_mib_s
            );
        }
        // Replication is read-cheap: R = 2 reads only the primary, so its
        // 4-backend read bandwidth stays within reach of R = 1.
        let r1 = find(&rows, "LamassuFS", "seq-read", 4, 1);
        let r2 = find(&rows, "LamassuFS", "seq-read", 4, 2);
        assert!(
            r2.bandwidth_mib_s >= 0.5 * r1.bandwidth_mib_s,
            "R=2 reads collapsed: {:.1} vs {:.1} MiB/s",
            r2.bandwidth_mib_s,
            r1.bandwidth_mib_s
        );
        // The ring must spread load: at 4 backends no member may serve more
        // than ~60% of the ops (100/N would be a perfect 25%).
        assert!(
            r1.max_member_op_pct < 60.0,
            "placement is lopsided: busiest member served {:.0}% of ops",
            r1.max_member_op_pct
        );
    }
}
