//! §1/§5.2 ablation: local inner-key KDF vs DupLESS-style server-aided keys.
//!
//! The paper rejects DupLESS's server-aided key generation because the
//! per-block network round trips make it "impractical for block-level
//! operation". This experiment measures the key-derivation rate and the
//! projected sequential-write throughput of a 4 KiB-block convergent system
//! under three key-generation strategies: Lamassu's local KDF, a LAN key
//! server (0.5 ms RTT), and a WAN key server (10 ms RTT).

use crate::report::{write_json, Table};
use lamassu_crypto::kdf::ConvergentKdf;
use lamassu_keymgr::{KeyServer, ServerAidedKdf};
use serde::Serialize;
use std::time::{Duration, Instant};

/// One key-generation strategy's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct KeyServerRow {
    /// Strategy label.
    pub strategy: String,
    /// Average time to derive one block key (compute + network model).
    pub per_key_us: f64,
    /// Keys derivable per second.
    pub keys_per_second: f64,
    /// Projected sequential-write bandwidth for 4 KiB blocks if key
    /// derivation were the only cost (an upper bound on what the strategy
    /// allows).
    pub projected_write_mib_s: f64,
}

/// Runs the key-server ablation over `blocks` 4 KiB blocks.
pub fn run(blocks: usize) -> Vec<KeyServerRow> {
    let payload: Vec<Vec<u8>> = (0..blocks)
        .map(|i| {
            let mut block = vec![0u8; 4096];
            block[..8].copy_from_slice(&(i as u64).to_le_bytes());
            block
        })
        .collect();

    let mut rows = Vec::new();

    // Local KDF (Lamassu's choice): measured compute only.
    let local = ConvergentKdf::new(&[0x11; 32]);
    let start = Instant::now();
    for block in &payload {
        std::hint::black_box(local.derive_for_block(block));
    }
    rows.push(row(
        "local inner-key KDF (Lamassu)",
        start.elapsed(),
        blocks,
    ));

    // Server-aided: measured compute plus modelled network time.
    for (label, server) in [
        (
            "DupLESS-style, LAN key server (0.5 ms RTT)",
            KeyServer::lan(&[0x22; 32]),
        ),
        (
            "DupLESS-style, WAN key server (10 ms RTT)",
            KeyServer::wan(&[0x22; 32]),
        ),
    ] {
        let kdf = ServerAidedKdf::new(server.clone());
        server.reset_accounting();
        let start = Instant::now();
        for block in &payload {
            std::hint::black_box(kdf.derive_for_block(block));
        }
        let total = start.elapsed() + server.network_time();
        rows.push(row(label, total, blocks));
    }

    let mut table = Table::new(
        "Ablation (§1): convergent key generation strategies, 4 KiB blocks",
        &[
            "strategy",
            "per-key (us)",
            "keys/s",
            "projected seq-write (MiB/s)",
        ],
    );
    for r in &rows {
        table.row(&[
            r.strategy.clone(),
            format!("{:.1}", r.per_key_us),
            format!("{:.0}", r.keys_per_second),
            format!("{:.1}", r.projected_write_mib_s),
        ]);
    }
    table.print();
    write_json("ablation_key_server", &rows);
    rows
}

fn row(label: &str, total: Duration, blocks: usize) -> KeyServerRow {
    let per_key = total.as_secs_f64() / blocks as f64;
    KeyServerRow {
        strategy: label.to_string(),
        per_key_us: per_key * 1e6,
        keys_per_second: 1.0 / per_key,
        projected_write_mib_s: 4096.0 / per_key / (1024.0 * 1024.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_kdf_is_orders_of_magnitude_faster_than_server_aided() {
        let rows = run(256);
        assert_eq!(rows.len(), 3);
        let local = &rows[0];
        let lan = &rows[1];
        let wan = &rows[2];
        assert!(
            local.keys_per_second > lan.keys_per_second * 5.0,
            "local {} vs LAN {}",
            local.keys_per_second,
            lan.keys_per_second
        );
        assert!(lan.keys_per_second > wan.keys_per_second * 5.0);
        // A WAN key server cannot sustain even a few MiB/s of 4 KiB writes,
        // which is the paper's argument for the local inner-key defence.
        assert!(wan.projected_write_mib_s < 1.0);
    }
}
