//! Hot-path microbenchmarks: allocs/op and ns/block on the steady-state
//! data path.
//!
//! The span pipeline made the data path transport-efficient; this experiment
//! watches the two costs that remain once the backend round trips are gone —
//! per-block CPU work and per-operation allocator traffic:
//!
//! * **digest** — SHA-256 of one 4 KiB data block, the Equation 1 /
//!   §2.5 self-check hash, through the streaming hasher and through the
//!   one-shot [`digest_block`] fast
//!   path;
//! * **GHASH** — the GCM authentication hash over 4 KiB of metadata,
//!   table-driven (Shoup 4-bit tables, byte step) vs the SP 800-38D
//!   bit-serial reference. The release-mode shape test asserts the table
//!   method is **≥ 5x** faster;
//! * **span read** — a warm sequential re-read loop on `LamassuFs` over an
//!   instant-profile store, with the mount's
//!   [`BlockPool`](lamassu_core::pool::BlockPool) enabled (default) vs
//!   disabled (`pool_blocks = Some(0)`, every staging buffer allocated
//!   fresh). The shape test asserts the pooled path is no slower; the
//!   zero-allocation claim itself is pinned by `tests/zero_alloc.rs` with a
//!   counting global allocator.
//!
//! The allocs/op column is populated when the process has a counting global
//! allocator registered through [`set_alloc_counter`] (the `hot_path` binary
//! does); library test runs report it as `n/a` (the workspace crates forbid
//! `unsafe`, which a `GlobalAlloc` impl needs).

use crate::report::{write_json, Table};
use lamassu_core::{FileSystem, LamassuConfig, LamassuFs, SpanConfig, SpanPolicy};
use lamassu_crypto::ghash::{Ghash, GhashBitSerial};
use lamassu_crypto::sha256::{digest_block, Sha256};
use lamassu_keymgr::KeyManager;
use lamassu_storage::{DedupStore, StorageProfile};
use serde::Serialize;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Instant;

/// Lamassu data-block size the per-block numbers are quoted for.
const BLOCK: usize = 4096;

/// Reader for the process's allocation counter, when one is registered.
static ALLOC_COUNTER: OnceLock<fn() -> u64> = OnceLock::new();

/// Registers a reader for the process's cumulative allocation count (the
/// `hot_path` binary installs a counting `#[global_allocator]` and points
/// this at it). Must be called before [`run`]; later calls are ignored.
pub fn set_alloc_counter(read: fn() -> u64) {
    let _ = ALLOC_COUNTER.set(read);
}

fn allocs_now() -> Option<u64> {
    ALLOC_COUNTER.get().map(|f| f())
}

/// One measured hot-path metric.
#[derive(Debug, Clone, Serialize)]
pub struct HotPathRow {
    /// Metric name.
    pub metric: String,
    /// Nanoseconds per block (4 KiB data block; GHASH rows absorb 4 KiB of
    /// 16-byte GCM blocks per "block").
    pub ns_per_block: f64,
    /// Heap allocations per measured operation; `-1` when no counting
    /// allocator is registered.
    pub allocs_per_op: f64,
    /// Operations measured.
    pub ops: u64,
}

/// Times `op` for `iters` iterations, returning (ns/iter, allocs/iter).
fn measure(iters: u64, mut op: impl FnMut()) -> (f64, f64) {
    let a0 = allocs_now();
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let allocs = match (a0, allocs_now()) {
        (Some(a0), Some(a1)) => (a1 - a0) as f64 / iters as f64,
        _ => -1.0,
    };
    (ns, allocs)
}

/// Best (minimum-time) of `rounds` measurement rounds — the usual defence
/// against scheduler noise in shape-asserted microbenchmarks.
fn best_of(rounds: usize, iters: u64, mut op: impl FnMut()) -> (f64, f64) {
    let mut best = (f64::INFINITY, -1.0);
    for _ in 0..rounds {
        let (ns, allocs) = measure(iters, &mut op);
        if ns < best.0 {
            best = (ns, allocs);
        }
    }
    best
}

/// Application read size of the span-read loop. Reads are issued at a
/// half-block misalignment, so every operation stages its head and tail
/// edge blocks — the pooled buffers the experiment compares.
const SPAN_IO: usize = 64 * 1024;
/// Misalignment of every span read (half a block).
const SPAN_SKEW: usize = BLOCK / 2;

/// One warm LamassuFS mount plus the open descriptor of its test file.
struct SpanReadSetup {
    fs: LamassuFs,
    fd: lamassu_core::Fd,
    size: usize,
}

impl SpanReadSetup {
    fn new(pool_blocks: Option<usize>, file_mb: usize) -> Self {
        let store = Arc::new(DedupStore::new(BLOCK, StorageProfile::instant()));
        let km = KeyManager::new();
        let zone = km.create_zone(1).expect("fresh key manager");
        let keys = km.fetch_zone_keys(zone).expect("zone just created");
        let config = LamassuConfig::default().span(SpanConfig {
            policy: SpanPolicy::Batched,
            // One worker: measure the inline (zero-allocation) pipeline,
            // not thread-spawn jitter.
            workers: 1,
            pool_blocks,
            ..SpanConfig::default()
        });
        let fs = LamassuFs::new(store, keys, config);
        let size = file_mb * 1024 * 1024;
        let fd = fs.create("/hot.dat").expect("fresh mount");
        let data: Vec<u8> = (0..SPAN_IO).map(|i| (i % 251) as u8).collect();
        let mut off = 0usize;
        while off < size {
            fs.write(fd, off as u64, &data).expect("populate");
            off += SPAN_IO;
        }
        fs.fsync(fd).expect("populate fsync");
        SpanReadSetup { fs, fd, size }
    }

    /// One measured pass: `ops` misaligned re-reads cycling over the file.
    fn reread(&self, buf: &mut [u8], ops: u64) {
        let mut off = SPAN_SKEW;
        for _ in 0..ops {
            let n = self.fs.read_into(self.fd, off as u64, buf).expect("read");
            assert_eq!(n, SPAN_IO);
            off += SPAN_IO;
            if off + SPAN_IO > self.size {
                off = SPAN_SKEW;
            }
        }
    }
}

/// Warm misaligned re-read loops on two otherwise identical LamassuFS
/// mounts — block pool enabled vs disabled — measured in interleaved rounds
/// so clock drift hits both equally. Returns
/// `[(ns/4KiB-block, allocs/op); 2]` for (pooled, allocating).
fn measure_span_read(file_mb: usize) -> [(f64, f64); 2] {
    let setups = [
        SpanReadSetup::new(None, file_mb),
        SpanReadSetup::new(Some(0), file_mb),
    ];
    let mut buf = vec![0u8; SPAN_IO];
    let ops = (setups[0].size / SPAN_IO) as u64;
    // Warm: metadata caches, pools, thread-local scratch.
    for s in &setups {
        s.reread(&mut buf, ops);
        s.reread(&mut buf, ops);
    }
    let mut best = [(f64::INFINITY, -1.0); 2];
    for _ in 0..4 {
        for (i, s) in setups.iter().enumerate() {
            // One measured iteration = one full pass cycling over the file
            // (so the working set really is `file_mb`, not one hot window);
            // normalize to per-op below.
            let (pass_ns, pass_allocs) = measure(1, || s.reread(&mut buf, ops));
            let ns = pass_ns / ops as f64;
            if ns < best[i].0 {
                best[i] = (ns, pass_allocs / ops as f64);
            }
        }
    }
    let blocks_per_op = (SPAN_IO / BLOCK) as f64 + 1.0; // +1: two half edges
    best.map(|(ns, allocs)| (ns / blocks_per_op, allocs))
}

/// Runs the hot-path microbenchmarks; `file_mb` sizes the span-read file.
pub fn run(file_mb: usize) -> Vec<HotPathRow> {
    let mut rows = Vec::new();
    let mut push = |metric: &str, ns: f64, allocs: f64, ops: u64| {
        rows.push(HotPathRow {
            metric: metric.to_string(),
            ns_per_block: ns,
            allocs_per_op: allocs,
            ops,
        });
    };

    let block: Vec<u8> = (0..BLOCK).map(|i| (i % 251) as u8).collect();

    // SHA-256 of one 4 KiB block: streaming vs one-shot fast path.
    let (ns, allocs) = best_of(3, 20_000, || {
        let mut h = Sha256::new();
        h.update(&block);
        std::hint::black_box(h.finalize());
    });
    push("sha256 streaming 4KiB", ns, allocs, 20_000);
    let (ns, allocs) = best_of(3, 20_000, || {
        std::hint::black_box(digest_block(&block));
    });
    push("sha256 digest_block 4KiB", ns, allocs, 20_000);

    // GHASH over 4 KiB: table-driven vs bit-serial reference.
    let h = [0x42u8; 16];
    let (ns, allocs) = best_of(3, 5_000, || {
        let mut g = Ghash::new(&h);
        g.update_padded(&block);
        std::hint::black_box(g.finalize(0, BLOCK));
    });
    push("ghash table 4KiB", ns, allocs, 5_000);
    let (ns, allocs) = best_of(3, 500, || {
        let mut g = GhashBitSerial::new(&h);
        g.update_padded(&block);
        std::hint::black_box(g.finalize(0, BLOCK));
    });
    push("ghash bit-serial 4KiB", ns, allocs, 500);

    // Warm LamassuFS span re-reads: pooled vs allocating staging buffers.
    let [(pooled_ns, pooled_allocs), (alloc_ns, alloc_allocs)] = measure_span_read(file_mb);
    push("span read pooled (per 4KiB)", pooled_ns, pooled_allocs, 0);
    push("span read allocating (per 4KiB)", alloc_ns, alloc_allocs, 0);

    let mut table = Table::new(
        "Hot path: ns/block and allocs/op on the steady-state data path",
        &["metric", "ns/block", "allocs/op"],
    );
    for r in &rows {
        let allocs = if r.allocs_per_op < 0.0 {
            "n/a".to_string()
        } else {
            format!("{:.2}", r.allocs_per_op)
        };
        table.row(&[r.metric.clone(), format!("{:.0}", r.ns_per_block), allocs]);
    }
    table.print();
    write_json("hot_path", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [HotPathRow], metric: &str) -> &'a HotPathRow {
        rows.iter()
            .find(|r| r.metric == metric)
            .unwrap_or_else(|| panic!("missing metric {metric}"))
    }

    #[test]
    fn table_ghash_and_pooled_reads_hold_their_shapes() {
        let rows = run(4);

        // The Shoup-table GHASH must beat the bit-serial reference by ≥ 5x
        // (measured ~5.5–6x; the satellite acceptance bar).
        let table = find(&rows, "ghash table 4KiB").ns_per_block;
        let serial = find(&rows, "ghash bit-serial 4KiB").ns_per_block;
        assert!(
            serial >= table * 5.0,
            "table GHASH {table:.0} ns vs bit-serial {serial:.0} ns — less than 5x"
        );

        // Pooled span reads must be no slower than the allocating baseline
        // (expected faster; 10% head-room absorbs scheduler noise).
        let pooled = find(&rows, "span read pooled (per 4KiB)").ns_per_block;
        let alloc = find(&rows, "span read allocating (per 4KiB)").ns_per_block;
        assert!(
            pooled <= alloc * 1.10,
            "pooled span read {pooled:.0} ns/block vs allocating {alloc:.0} ns/block"
        );

        // The one-shot digest fast path must not lose to the streaming
        // hasher it bypasses.
        let one_shot = find(&rows, "sha256 digest_block 4KiB").ns_per_block;
        let streaming = find(&rows, "sha256 streaming 4KiB").ns_per_block;
        assert!(one_shot <= streaming * 1.10);
    }
}
