//! Span I/O experiment: the per-span pipeline's round-trip collapse.
//!
//! Every shim data path was rebuilt around spans (whole-run vectored backend
//! I/O plus parallel batch crypto — see `lamassu-core::span`); the original
//! per-block pipeline survives as a verification oracle. This experiment
//! measures what the conversion buys over the modelled NFS transport, where
//! the per-operation round trip dominates: a sequential read and a full
//! overwrite of the same file through both pipelines, on `LamassuFs` and
//! `EncFs`, with `IoCounters` recording the backend operations each issues.
//!
//! The headline number (asserted by the release-mode perf-shape test and a
//! CI step): a 4 MiB sequential read through `LamassuFs` over the NFS
//! profile issues **≤ 1/8** the backend read operations of the per-block
//! path, because every ≤118-block segment run arrives in one vectored read
//! instead of one read per block.

use crate::report::{write_json, Table};
use crate::setup::{mount_with_span, FsKind, Mount};
use lamassu_core::{OpenFlags, SpanConfig};
use lamassu_storage::{ObjectStore, StorageProfile};
use lamassu_workloads::{FioConfig, FioTester};
use serde::Serialize;

/// How much of the file one application-level I/O covers (1 MiB, a typical
/// streaming read/write size; the pipelines split it into blocks/spans).
const APP_IO: usize = 1024 * 1024;

/// One (file system, pipeline) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct SpanIoRow {
    /// File-system variant label.
    pub fs: String,
    /// "span" or "per-block".
    pub pipeline: String,
    /// Backend read operations during the sequential read phase.
    pub read_ops: u64,
    /// Modelled transport milliseconds of the read phase.
    pub read_io_ms: f64,
    /// Backend write operations during the overwrite phase.
    pub write_ops: u64,
    /// Modelled transport milliseconds of the overwrite phase.
    pub write_io_ms: f64,
}

fn span_config(pipeline: &str) -> SpanConfig {
    match pipeline {
        "span" => SpanConfig::batched(),
        _ => SpanConfig::per_block(),
    }
}

/// Sequentially reads the whole file in [`APP_IO`] chunks through one reused
/// buffer, returning the backend ops and virtual transport time it cost.
fn measured_read(m: &Mount, path: &str, file_size: u64) -> (u64, f64) {
    let fd = m.fs.open(path, OpenFlags::default()).expect("open");
    m.store.reset_io_accounting();
    let mut buf = vec![0u8; APP_IO];
    let mut offset = 0u64;
    while offset < file_size {
        let n = m.fs.read_into(fd, offset, &mut buf).expect("read");
        assert!(n > 0, "file ends early");
        offset += n as u64;
    }
    let ops = m.store.io_counters().read_ops;
    let io_ms = m.store.io_time().as_secs_f64() * 1e3;
    m.fs.close(fd).expect("close");
    (ops, io_ms)
}

/// Overwrites the whole file sequentially in [`APP_IO`] chunks, returning
/// backend write ops and virtual transport time.
fn measured_overwrite(m: &Mount, path: &str, file_size: u64) -> (u64, f64) {
    let fd = m.fs.open(path, OpenFlags::default()).expect("open");
    m.store.reset_io_accounting();
    let chunk: Vec<u8> = (0..APP_IO).map(|i| (i % 249) as u8).collect();
    let mut offset = 0u64;
    while offset < file_size {
        let take = APP_IO.min((file_size - offset) as usize);
        m.fs.write(fd, offset, &chunk[..take]).expect("write");
        offset += take as u64;
    }
    m.fs.fsync(fd).expect("fsync");
    let ops = m.store.io_counters().write_ops;
    let io_ms = m.store.io_time().as_secs_f64() * 1e3;
    m.fs.close(fd).expect("close");
    (ops, io_ms)
}

/// Runs the experiment with a `file_size`-byte file over the NFS profile.
pub fn run(file_size: u64) -> Vec<SpanIoRow> {
    let profile = StorageProfile::nfs_1gbe();
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });
    let mut rows = Vec::new();
    for kind in [FsKind::Lamassu, FsKind::Enc] {
        for pipeline in ["per-block", "span"] {
            let m = mount_with_span(kind, profile, 8, span_config(pipeline));
            tester
                .populate(m.fs.as_ref(), "/span.dat")
                .expect("populate");
            let (read_ops, read_io_ms) = measured_read(&m, "/span.dat", file_size);
            let (write_ops, write_io_ms) = measured_overwrite(&m, "/span.dat", file_size);
            rows.push(SpanIoRow {
                fs: kind.label().to_string(),
                pipeline: pipeline.to_string(),
                read_ops,
                read_io_ms,
                write_ops,
                write_io_ms,
            });
        }
    }

    let mut table = Table::new(
        "Span I/O: backend round trips, span vs per-block pipeline (NFS profile)",
        &[
            "fs",
            "pipeline",
            "rd ops",
            "rd I/O ms",
            "wr ops",
            "wr I/O ms",
        ],
    );
    for r in &rows {
        table.row(&[
            r.fs.clone(),
            r.pipeline.clone(),
            format!("{}", r.read_ops),
            format!("{:.1}", r.read_io_ms),
            format!("{}", r.write_ops),
            format!("{:.1}", r.write_io_ms),
        ]);
    }
    table.print();
    write_json("span_io", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [SpanIoRow], fs: &str, pipeline: &str) -> &'a SpanIoRow {
        rows.iter()
            .find(|r| r.fs == fs && r.pipeline == pipeline)
            .unwrap_or_else(|| panic!("missing row {fs}/{pipeline}"))
    }

    #[test]
    fn span_pipeline_collapses_round_trips() {
        // The acceptance shape: a 4 MiB sequential LamassuFS read over NFS
        // issues at most 1/8 the backend read operations of the per-block
        // pipeline (in practice ~20 vectored reads vs ~1030 block reads).
        let rows = run(4 * 1024 * 1024);

        let lam_pb = find(&rows, "LamassuFS", "per-block");
        let lam_sp = find(&rows, "LamassuFS", "span");
        assert!(
            lam_sp.read_ops * 8 <= lam_pb.read_ops,
            "span read ops {} vs per-block {}",
            lam_sp.read_ops,
            lam_pb.read_ops
        );
        // The modelled transport time collapses with the round trips.
        assert!(lam_sp.read_io_ms < lam_pb.read_io_ms);
        // Commit phase 2 coalesces adjacent dirty blocks: at least 2x fewer
        // backend writes (R=8 data writes fold into one vectored write).
        assert!(
            lam_sp.write_ops * 2 <= lam_pb.write_ops,
            "span write ops {} vs per-block {}",
            lam_sp.write_ops,
            lam_pb.write_ops
        );

        // EncFS: data blocks are contiguous, so a 1 MiB span is one round
        // trip per direction vs 256 per-block trips.
        let enc_pb = find(&rows, "EncFS", "per-block");
        let enc_sp = find(&rows, "EncFS", "span");
        assert!(enc_sp.read_ops * 8 <= enc_pb.read_ops);
        assert!(enc_sp.write_ops * 8 <= enc_pb.write_ops);
    }
}
