//! One module per experiment of the paper's evaluation (§4).
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig6`] | Figure 6 — storage efficiency vs synthetic redundancy α |
//! | [`table1`] | Table 1 — storage efficiency with (synthetic) VM images |
//! | [`throughput`] | Figures 7 and 8 — FIO throughput on NFS / RAM disk |
//! | [`fig9`] | Figure 9 — LamassuFS latency breakdown |
//! | [`fig10`] | Figure 10 — throughput vs reserved key slots R |
//! | [`fig11`] | Figure 11 — storage efficiency vs reserved key slots R |
//! | [`ablation`] | §4.2 note — block-aligned vs unaligned EncFS over NFS |
//! | [`ablation_ce_granularity`] | §5.2 — per-block vs per-file convergent encryption |
//! | [`ablation_key_server`] | §1 — local KDF vs DupLESS-style server-aided keys |
//! | [`cache`] | beyond the paper — cached vs uncached I/O over the NFS profile |
//! | [`span_io`] | beyond the paper — span vs per-block pipeline round trips |
//! | [`qdepth`] | beyond the paper — async-pipeline read makespan vs channel queue depth |
//! | [`scaling`] | beyond the paper — multi-job throughput vs job count |
//! | [`scaleout`] | beyond the paper — routed-tier throughput vs backend count |
//! | [`hot_path`] | beyond the paper — allocs/op and ns/block on the steady-state data path |
//! | [`latency`] | beyond the paper — per-op latency percentiles and the telemetry overhead budget |
//! | [`wide_crypto`] | beyond the paper — wide constant-time AES/SHA kernels vs the scalar T-table oracle |
//! | [`chaos`] | beyond the paper — self-healing under transient faults and a burst outage |

pub mod ablation;
pub mod ablation_ce_granularity;
pub mod ablation_key_server;
pub mod cache;
pub mod chaos;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig9;
pub mod hot_path;
pub mod latency;
pub mod qdepth;
pub mod scaleout;
pub mod scaling;
pub mod span_io;
pub mod table1;
pub mod throughput;
pub mod wide_crypto;

use lamassu_core::FileSystem;

/// Writes `data` to `path` through `fs` in 1 MiB chunks and closes the file.
pub(crate) fn write_file(fs: &dyn FileSystem, path: &str, data: &[u8]) {
    let fd = fs.create(path).expect("fresh path in a fresh mount");
    for (i, chunk) in data.chunks(1024 * 1024).enumerate() {
        fs.write(fd, (i * 1024 * 1024) as u64, chunk)
            .expect("benchmark write");
    }
    fs.fsync(fd).expect("benchmark fsync");
    fs.close(fd).expect("benchmark close");
}
