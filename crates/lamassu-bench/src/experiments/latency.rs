//! Per-operation latency percentiles and the telemetry overhead budget.
//!
//! Throughput (Figures 7 and 8) averages away the tail; this experiment
//! reports what the always-on telemetry of `lamassu-telemetry` actually
//! measures — per-request latency distributions:
//!
//! * **percentile table** — every shim of [`FsKind::ALL`] runs the
//!   sequential- and random-read FIO workloads over an instant-profile store
//!   with an op [`Tracer`] attached, and reports p50/p95/p99/max per-request
//!   read latency from the preallocated histograms inside
//!   [`lamassu_workloads::FioResult`];
//! * **overhead comparison** — two identical warm LamassuFS mounts, one with
//!   a tracer attached (full op spans + phase attribution) and one without
//!   (the always-on counters and category histograms both keep running),
//!   re-read the same file in interleaved best-of rounds. The release-mode
//!   shape test asserts the traced mount stays within **3%** of the untraced
//!   one — the crate's advertised overhead budget.
//!
//! With `dump_telemetry` (the binaries' `--telemetry` flag), the traced
//! LamassuFS mount's full [`Snapshot`] — profiler breakdown, pool gauges,
//! op histograms and slow-op log — is printed as Prometheus text and written
//! under `results/latency_telemetry.json`.

use crate::report::{write_json, Table};
use crate::setup::{mount, FsKind, Mount};
use lamassu_storage::StorageProfile;
use lamassu_telemetry::{LatencySummary, Registry, Snapshot, TraceConfig, Tracer};
use lamassu_workloads::{FioConfig, FioTester, Workload};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// One (shim, workload) percentile row.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyRow {
    /// Shim label ([`FsKind::label`]).
    pub fs: String,
    /// Workload label ([`Workload::label`]).
    pub workload: String,
    /// Per-request read-latency summary of the measured phase.
    pub read: LatencySummary,
}

/// The traced-vs-untraced overhead comparison.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OverheadRow {
    /// Best ns/op with no tracer attached (counters and histograms only).
    pub off_ns_per_op: f64,
    /// Best ns/op with a tracer attached (full spans + phase attribution).
    pub on_ns_per_op: f64,
    /// `on / off` — the number the ≤ 1.03 release assertion pins.
    pub ratio: f64,
    /// Re-read operations per measured round.
    pub ops: u64,
}

/// Everything the experiment measured.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyReport {
    /// Percentile rows, one per (shim, workload).
    pub rows: Vec<LatencyRow>,
    /// The telemetry overhead comparison.
    pub overhead: OverheadRow,
}

/// Attaches a fresh tracer (and its registry) to a mount's profiler.
fn attach_tracer(m: &Mount) -> (Arc<Registry>, Arc<Tracer>) {
    let registry = Arc::new(Registry::new());
    let tracer = Tracer::new(&registry, TraceConfig::default());
    m.profiler.attach_tracer(tracer.clone());
    (registry, tracer)
}

/// Percentile rows: each shim runs the read workloads with tracing on.
fn measure_percentiles(file_size: u64) -> Vec<LatencyRow> {
    let tester = FioTester::new(FioConfig::small(file_size));
    let mut rows = Vec::new();
    for kind in FsKind::ALL {
        let m = mount(kind, StorageProfile::instant(), 8);
        attach_tracer(&m);
        tester.populate(m.fs.as_ref(), "/lat").expect("populate");
        for wl in [Workload::SeqRead, Workload::RandRead] {
            let result = tester
                .run(m.fs.as_ref(), m.store.as_ref(), "/lat", wl)
                .expect("fio run");
            rows.push(LatencyRow {
                fs: kind.label().to_string(),
                workload: wl.label().to_string(),
                read: result.read_lat,
            });
        }
    }
    rows
}

/// Warm aligned 4 KiB re-reads over one file; returns wall ns for the pass.
fn reread_pass(m: &Mount, fd: lamassu_core::Fd, buf: &mut [u8], ops: u64) -> f64 {
    let start = Instant::now();
    let mut off = 0u64;
    for _ in 0..ops {
        let n = m.fs.read_into(fd, off, buf).expect("warm re-read");
        assert_eq!(n, buf.len());
        off += buf.len() as u64;
        if off + buf.len() as u64 > ops * buf.len() as u64 {
            off = 0;
        }
    }
    start.elapsed().as_nanos() as f64
}

/// Two identical warm LamassuFS mounts — tracer attached vs not — re-read
/// the same data in interleaved best-of rounds so clock drift hits both
/// equally. Returns the overhead row (and the traced mount for export).
fn measure_overhead(file_size: u64) -> (OverheadRow, Mount, Arc<Registry>, Arc<Tracer>) {
    let io = 4096usize;
    let ops = file_size / io as u64;
    let build = || {
        let m = mount(FsKind::Lamassu, StorageProfile::instant(), 8);
        let fd = m.fs.create("/hot").expect("fresh mount");
        let chunk = vec![7u8; 1024 * 1024];
        let mut off = 0u64;
        while off < file_size {
            m.fs.write(fd, off, &chunk).expect("populate");
            off += chunk.len() as u64;
        }
        m.fs.fsync(fd).expect("populate fsync");
        (m, fd)
    };
    let (off_mount, off_fd) = build();
    let (on_mount, on_fd) = build();
    let (registry, tracer) = attach_tracer(&on_mount);

    let mut buf = vec![0u8; io];
    // Warm both mounts: metadata caches, pools, per-thread rings.
    for _ in 0..2 {
        reread_pass(&off_mount, off_fd, &mut buf, ops);
        reread_pass(&on_mount, on_fd, &mut buf, ops);
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..5 {
        let off_ns = reread_pass(&off_mount, off_fd, &mut buf, ops);
        let on_ns = reread_pass(&on_mount, on_fd, &mut buf, ops);
        best[0] = best[0].min(off_ns / ops as f64);
        best[1] = best[1].min(on_ns / ops as f64);
    }
    let row = OverheadRow {
        off_ns_per_op: best[0],
        on_ns_per_op: best[1],
        ratio: best[1] / best[0],
        ops,
    };
    (row, on_mount, registry, tracer)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

/// Runs the experiment; `file_size` sizes the FIO target and the re-read
/// file. With `dump_telemetry`, also prints the traced mount's snapshot as
/// Prometheus text and writes it under `results/latency_telemetry.json`.
pub fn run(file_size: u64, dump_telemetry: bool) -> LatencyReport {
    let rows = measure_percentiles(file_size);
    let (overhead, on_mount, registry, tracer) = measure_overhead(file_size);

    let mut table = Table::new(
        "Per-op read latency percentiles (µs) and telemetry overhead",
        &["fs", "workload", "ops", "p50", "p95", "p99", "max"],
    );
    for r in &rows {
        table.row(&[
            r.fs.clone(),
            r.workload.clone(),
            r.read.count.to_string(),
            fmt_us(r.read.p50_ns),
            fmt_us(r.read.p95_ns),
            fmt_us(r.read.p99_ns),
            fmt_us(r.read.max_ns),
        ]);
    }
    table.print();
    println!(
        "telemetry overhead: traced {:.0} ns/op vs untraced {:.0} ns/op ({:+.2}%)",
        overhead.on_ns_per_op,
        overhead.off_ns_per_op,
        (overhead.ratio - 1.0) * 100.0
    );

    let report = LatencyReport { rows, overhead };
    write_json("latency", &report);

    if dump_telemetry {
        let mut snap = Snapshot::new();
        on_mount
            .profiler
            .export(&mut snap, "lamassu", std::time::Duration::ZERO);
        tracer.export(&mut snap, "trace");
        registry.export(&mut snap, "registry");
        print!("{}", snap.to_prometheus());
        write_json("latency_telemetry", &snap);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_order_and_cover_every_shim() {
        let report = run(2 * 1024 * 1024, false);
        assert_eq!(report.rows.len(), FsKind::ALL.len() * 2);
        for r in &report.rows {
            assert!(r.read.count > 0, "{} {}", r.fs, r.workload);
            assert!(r.read.p50_ns > 0);
            assert!(r.read.p50_ns <= r.read.p95_ns);
            assert!(r.read.p95_ns <= r.read.p99_ns);
            assert!(r.read.p99_ns <= r.read.max_ns);
        }
        assert!(report.overhead.off_ns_per_op > 0.0);
        assert!(report.overhead.on_ns_per_op > 0.0);
    }

    // The 3% budget is a release-mode property: debug builds neither inline
    // the record path nor optimize the guards, so only the optimized build
    // is held to the bar CI asserts.
    #[cfg(not(debug_assertions))]
    #[test]
    fn telemetry_overhead_stays_within_three_percent() {
        use lamassu_telemetry::OpKind;
        let (row, _m, _r, tracer) = measure_overhead(8 * 1024 * 1024);
        assert!(
            row.ratio <= 1.03,
            "traced re-reads {:.0} ns/op vs untraced {:.0} ns/op — {:.2}% over the 3% budget",
            row.on_ns_per_op,
            row.off_ns_per_op,
            (row.ratio - 1.0) * 100.0
        );
        // The traced mount really was tracing: every measured op spanned.
        assert!(tracer.ops() > 0);
        assert!(tracer.op_histogram(OpKind::Read).count > 0);
    }
}
