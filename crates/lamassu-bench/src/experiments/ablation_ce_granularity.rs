//! §5.2 ablation: per-block (Lamassu) vs per-file (Tahoe-LAFS-style)
//! convergent encryption.
//!
//! The paper argues that whole-file convergent encryption "limit\[s\] the
//! storage efficiency compared with Lamassu's per-block approach". This
//! experiment quantifies that claim on a backup-style workload: a base file
//! plus several later versions, each differing from the previous one in a
//! small fraction of its blocks. Per-block CE re-encrypts only the changed
//! blocks, so consecutive versions share almost everything on the
//! deduplicating backend; per-file CE re-keys the whole file on any change,
//! so versions share nothing.

use crate::report::{write_json, Table};
use crate::setup::bench_zone_keys;
use lamassu_core::{CeFileFs, FileSystem, LamassuConfig, LamassuFs};
use lamassu_storage::{DedupStore, StorageProfile};
use lamassu_workloads::SyntheticSpec;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::Serialize;
use std::sync::Arc;

/// Result of storing the versioned corpus through one encryption granularity.
#[derive(Debug, Clone, Serialize)]
pub struct GranularityRow {
    /// "per-block (LamassuFS)" or "per-file (CeFileFS)".
    pub system: String,
    /// Number of file versions stored.
    pub versions: usize,
    /// Logical bytes stored across all versions.
    pub logical_bytes: u64,
    /// Physical bytes left on the backend after deduplication.
    pub physical_after_dedup: u64,
    /// Percentage of blocks removed by deduplication.
    pub deduplicated_pct: f64,
}

/// Runs the granularity ablation: `versions` versions of a `file_size`-byte
/// file, each mutating `churn` (fraction) of the blocks of the previous one.
pub fn run(file_size: u64, versions: usize, churn: f64) -> Vec<GranularityRow> {
    // Build the version chain once so both systems store identical data.
    let base = SyntheticSpec::new(file_size, 0.0, 777).generate();
    let mut rng = StdRng::seed_from_u64(778);
    let mut chain = vec![base];
    for _ in 1..versions {
        let mut next = chain.last().expect("non-empty").clone();
        let blocks = next.len() / 4096;
        let to_change = ((blocks as f64) * churn).ceil() as usize;
        for _ in 0..to_change {
            let b = rng.gen_range(0..blocks);
            rng.fill_bytes(&mut next[b * 4096..(b + 1) * 4096]);
        }
        chain.push(next);
    }

    let keys = bench_zone_keys();
    let mut rows = Vec::new();
    for per_block in [true, false] {
        let store = Arc::new(DedupStore::new(4096, StorageProfile::instant()));
        let fs: Box<dyn FileSystem> = if per_block {
            Box::new(LamassuFs::new(
                store.clone(),
                keys,
                LamassuConfig::default(),
            ))
        } else {
            Box::new(CeFileFs::new(store.clone(), keys, 4096))
        };
        for (v, data) in chain.iter().enumerate() {
            let path = format!("/backup/version-{v}");
            let fd = fs.create(&path).expect("fresh path");
            for (i, chunk) in data.chunks(1024 * 1024).enumerate() {
                fs.write(fd, (i * 1024 * 1024) as u64, chunk)
                    .expect("write");
            }
            fs.close(fd).expect("close");
        }
        let usage = store.usage();
        rows.push(GranularityRow {
            system: if per_block {
                "per-block (LamassuFS)".to_string()
            } else {
                "per-file (CeFileFS)".to_string()
            },
            versions,
            logical_bytes: file_size * versions as u64,
            physical_after_dedup: usage.used_after_dedup,
            deduplicated_pct: usage.deduplicated_pct,
        });
    }

    let mut table = Table::new(
        &format!(
            "Ablation (§5.2): CE granularity, {versions} versions, {:.1}% churn per version",
            churn * 100.0
        ),
        &[
            "system",
            "logical (MiB)",
            "after dedup (MiB)",
            "% deduplicated",
        ],
    );
    for r in &rows {
        table.row(&[
            r.system.clone(),
            format!("{:.1}", r.logical_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", r.physical_after_dedup as f64 / (1024.0 * 1024.0)),
            format!("{:.1}%", r.deduplicated_pct),
        ]);
    }
    table.print();
    write_json("ablation_ce_granularity", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_block_ce_retains_cross_version_dedup() {
        let rows = run(2 * 1024 * 1024, 4, 0.02);
        let per_block = &rows[0];
        let per_file = &rows[1];
        // Per-block: four versions differing by 2 % should deduplicate the
        // bulk of the corpus (~70 %+). Per-file: only the unchanged... nothing
        // deduplicates across versions, so savings stay near zero.
        assert!(
            per_block.deduplicated_pct > 60.0,
            "per-block {}",
            per_block.deduplicated_pct
        );
        assert!(
            per_file.deduplicated_pct < 10.0,
            "per-file {}",
            per_file.deduplicated_pct
        );
        assert!(per_block.physical_after_dedup < per_file.physical_after_dedup / 2);
    }
}
