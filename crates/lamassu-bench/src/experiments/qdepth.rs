//! Queue-depth experiment: what the completion-based I/O engine buys.
//!
//! The async pipelines (`lamassu-core::span`, [`IoMode::Async`] — the
//! default) submit all of a span's contiguous runs before draining any
//! completion, so up to `queue_depth` backend operations from **one** client
//! thread overlap on the modelled channel. This experiment sweeps the
//! channel's queue depth over {1, 4, 8, 16} and reads the same file
//! sequentially and at random through `LamassuFs` and `PlainFs` over the NFS
//! profile, reporting the virtual transport makespan at each depth.
//!
//! The headline number (asserted by the release-mode shape test and a CI
//! step): a 4 MiB sequential LamassuFS read at queue depth 8 finishes in
//! **≤ half** the depth-1 transport time — a ≥2× throughput gain from
//! overlap alone, no pipeline change. Each 1 MiB application read spans
//! three ≤118-block segment runs, all in flight together once the channel is
//! deep enough. PlainFS is the control: its reads are one submission each,
//! so its row stays flat across depths.
//!
//! [`IoMode::Async`]: lamassu_core::IoMode::Async

use crate::report::{write_json, Table};
use crate::setup::{mount_with_span, FsKind, Mount};
use lamassu_core::{OpenFlags, SpanConfig};
use lamassu_storage::{ObjectStore, StorageProfile};
use lamassu_workloads::{FioConfig, FioTester};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

/// How much of the file one application-level I/O covers (1 MiB, matching
/// the `span_io` experiment; the pipelines split it into runs).
const APP_IO: usize = 1024 * 1024;

/// The queue depths swept (the NFS profile's native depth is 8).
pub const DEPTHS: [usize; 4] = [1, 4, 8, 16];

/// One (file system, workload, queue depth) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct QdepthRow {
    /// File-system variant label.
    pub fs: String,
    /// "seq-read" or "rand-read".
    pub workload: String,
    /// The channel's queue depth for this mount.
    pub qd: usize,
    /// Backend read operations issued.
    pub read_ops: u64,
    /// Modelled transport makespan of the read phase, milliseconds.
    pub io_ms: f64,
    /// Throughput over the virtual makespan, MiB/s.
    pub mib_s: f64,
}

/// Reads the whole file in [`APP_IO`] chunks at the given chunk offsets
/// through one reused buffer, returning backend read ops and the virtual
/// transport makespan.
fn measured_read(m: &Mount, path: &str, offsets: &[u64]) -> (u64, f64) {
    let fd = m.fs.open(path, OpenFlags::default()).expect("open");
    // Warm-up pass so steady-state pools and file state don't skew the
    // measured pass, then reset the accounting.
    let mut buf = vec![0u8; APP_IO];
    m.fs.read_into(fd, 0, &mut buf).expect("warm-up read");
    m.store.reset_io_accounting();
    for &offset in offsets {
        let n = m.fs.read_into(fd, offset, &mut buf).expect("read");
        assert!(n > 0, "file ends early at {offset}");
    }
    let ops = m.store.io_counters().read_ops;
    let io_ms = m.store.io_time().as_secs_f64() * 1e3;
    m.fs.close(fd).expect("close");
    (ops, io_ms)
}

/// Runs the sweep with a `file_size`-byte file over the NFS profile.
pub fn run(file_size: u64) -> Vec<QdepthRow> {
    let chunks: Vec<u64> = (0..file_size).step_by(APP_IO).collect();
    let mut shuffled = chunks.clone();
    shuffled.shuffle(&mut StdRng::seed_from_u64(0x9d));
    let tester = FioTester::new(FioConfig {
        file_size,
        ..FioConfig::default()
    });

    let mut rows = Vec::new();
    for kind in [FsKind::Lamassu, FsKind::Plain] {
        for qd in DEPTHS {
            let profile = StorageProfile::nfs_1gbe().with_queue_depth(qd);
            let m = mount_with_span(kind, profile, 8, SpanConfig::default());
            tester.populate(m.fs.as_ref(), "/qd.dat").expect("populate");
            for (workload, offsets) in [("seq-read", &chunks), ("rand-read", &shuffled)] {
                let (read_ops, io_ms) = measured_read(&m, "/qd.dat", offsets);
                let mib = file_size as f64 / (1024.0 * 1024.0);
                rows.push(QdepthRow {
                    fs: kind.label().to_string(),
                    workload: workload.to_string(),
                    qd,
                    read_ops,
                    io_ms,
                    mib_s: mib / (io_ms / 1e3),
                });
            }
        }
    }

    let mut table = Table::new(
        "Queue depth: async-pipeline read makespan vs channel depth (NFS profile)",
        &["fs", "workload", "qd", "rd ops", "I/O ms", "MiB/s"],
    );
    for r in &rows {
        table.row(&[
            r.fs.clone(),
            r.workload.clone(),
            format!("{}", r.qd),
            format!("{}", r.read_ops),
            format!("{:.1}", r.io_ms),
            format!("{:.1}", r.mib_s),
        ]);
    }
    table.print();
    write_json("qdepth", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [QdepthRow], fs: &str, workload: &str, qd: usize) -> &'a QdepthRow {
        rows.iter()
            .find(|r| r.fs == fs && r.workload == workload && r.qd == qd)
            .unwrap_or_else(|| panic!("missing row {fs}/{workload}/qd{qd}"))
    }

    #[test]
    fn sweep_covers_the_matrix() {
        let rows = run(2 * 1024 * 1024);
        assert_eq!(rows.len(), 2 * 2 * DEPTHS.len());
        for r in &rows {
            assert!(
                r.read_ops > 0,
                "{}/{}/qd{} issued no reads",
                r.fs,
                r.workload,
                r.qd
            );
            assert!(r.io_ms > 0.0);
        }
        // PlainFS reads are one submission each: depth cannot help, so the
        // control row stays flat (equal virtual makespan at every depth).
        let p1 = find(&rows, "PlainFS", "seq-read", 1);
        let p16 = find(&rows, "PlainFS", "seq-read", 16);
        assert_eq!(p1.read_ops, p16.read_ops);
        assert!((p1.io_ms - p16.io_ms).abs() < 1e-6);
    }

    // The acceptance shape is a release-mode property only in that CI runs
    // it there; the metric itself is virtual-time and deterministic.
    #[cfg(not(debug_assertions))]
    #[test]
    fn depth_eight_doubles_sequential_read_throughput() {
        let rows = run(4 * 1024 * 1024);
        let qd1 = find(&rows, "LamassuFS", "seq-read", 1);
        let qd8 = find(&rows, "LamassuFS", "seq-read", 8);
        assert!(
            qd8.mib_s >= 2.0 * qd1.mib_s,
            "depth-8 seq read {:.1} MiB/s vs depth-1 {:.1} MiB/s — overlap under 2x",
            qd8.mib_s,
            qd1.mib_s
        );
        // Random reads overlap just the same: runs are submitted per
        // application call, so access order doesn't gate the win.
        let r1 = find(&rows, "LamassuFS", "rand-read", 1);
        let r8 = find(&rows, "LamassuFS", "rand-read", 8);
        assert!(r8.mib_s >= 2.0 * r1.mib_s);
    }
}
