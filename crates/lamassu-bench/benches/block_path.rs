//! Criterion benchmarks of the end-to-end 4 KiB block path of each shim.
//!
//! Complements the throughput experiments (Figures 7/8) with steady-state
//! per-block costs: write+fsync and read of one 4 KiB block through PlainFS,
//! EncFS, LamassuFS (full integrity) and LamassuFS (meta-only), over the
//! instant storage profile so only shim work is measured.
//!
//! The read benchmarks come in two flavours per shim: the zero-copy
//! `read_into` primitive (steady-state path, no per-call allocation) and the
//! allocating `read` convenience, so the cost the fd-centric API removes is
//! visible directly in the output.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lamassu_core::{
    EncFs, EncFsConfig, FileSystem, IntegrityMode, LamassuConfig, LamassuFs, PlainFs,
};
use lamassu_keymgr::ZoneKeys;
use lamassu_storage::{DedupStore, StorageProfile};
use std::hint::black_box;
use std::io::IoSlice;
use std::sync::Arc;

const BLOCK: usize = 4096;

fn keys() -> ZoneKeys {
    ZoneKeys {
        zone: 1,
        generation: 0,
        inner: [1u8; 32],
        outer: [2u8; 32],
    }
}

fn shims() -> Vec<(&'static str, Box<dyn FileSystem>)> {
    let mut out: Vec<(&'static str, Box<dyn FileSystem>)> = Vec::new();
    let store = Arc::new(DedupStore::new(4096, StorageProfile::instant()));
    out.push(("plainfs", Box::new(PlainFs::new(store))));
    let store = Arc::new(DedupStore::new(4096, StorageProfile::instant()));
    out.push((
        "encfs",
        Box::new(EncFs::new(store, [2u8; 32], EncFsConfig::default())),
    ));
    let store = Arc::new(DedupStore::new(4096, StorageProfile::instant()));
    out.push((
        "lamassufs_full",
        Box::new(LamassuFs::new(store, keys(), LamassuConfig::default())),
    ));
    let store = Arc::new(DedupStore::new(4096, StorageProfile::instant()));
    out.push((
        "lamassufs_meta_only",
        Box::new(LamassuFs::new(
            store,
            keys(),
            LamassuConfig::default().integrity(IntegrityMode::MetaOnly),
        )),
    ));
    out
}

fn bench_block_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_write_fsync");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    for (name, fs) in shims() {
        let fd = fs.create("/bench").unwrap();
        let data: Vec<u8> = (0..BLOCK).map(|i| (i % 256) as u8).collect();
        let mut block_idx = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                // Rotate through 1024 block positions so the file stays small
                // while every iteration lands on a full aligned block.
                let offset = (block_idx % 1024) * BLOCK as u64;
                block_idx += 1;
                fs.write_vectored(fd, offset, black_box(&[IoSlice::new(&data)]))
                    .unwrap();
                fs.fsync(fd).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_block_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_read_into");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    for (name, fs) in shims() {
        let fd = fs.create("/bench").unwrap();
        let data = vec![0xabu8; BLOCK * 256];
        fs.write(fd, 0, &data).unwrap();
        fs.fsync(fd).unwrap();
        let mut buf = vec![0u8; BLOCK];
        let mut block_idx = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                let offset = (block_idx % 256) * BLOCK as u64;
                block_idx += 1;
                black_box(fs.read_into(fd, offset, black_box(&mut buf)).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_block_read_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_read_alloc");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    for (name, fs) in shims() {
        let fd = fs.create("/bench").unwrap();
        let data = vec![0xabu8; BLOCK * 256];
        fs.write(fd, 0, &data).unwrap();
        fs.fsync(fd).unwrap();
        let mut block_idx = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                let offset = (block_idx % 256) * BLOCK as u64;
                block_idx += 1;
                black_box(fs.read(fd, offset, BLOCK).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_block_write,
    bench_block_read,
    bench_block_read_alloc
);
criterion_main!(benches);
