//! Criterion microbenchmarks of the crypto substrate on 4 KiB blocks.
//!
//! These quantify the per-block costs that drive the paper's Figure 9
//! breakdown: the SHA-256 hash behind `GetCEKey`, the AES-256-CBC data-block
//! encryption, the AES-256-GCM metadata sealing, and the full convergent KDF.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lamassu_crypto::aes::Aes256;
use lamassu_crypto::gcm::Aes256Gcm;
use lamassu_crypto::kdf::ConvergentKdf;
use lamassu_crypto::sha256::sha256;
use lamassu_crypto::{cbc, FIXED_IV};
use std::hint::black_box;

const BLOCK: usize = 4096;

fn block() -> Vec<u8> {
    (0..BLOCK).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_sha256(c: &mut Criterion) {
    let data = block();
    let mut g = c.benchmark_group("sha256");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.bench_function("hash_4k_block", |b| b.iter(|| sha256(black_box(&data))));
    g.finish();
}

fn bench_aes_cbc(c: &mut Criterion) {
    let data = block();
    let key = [7u8; 32];
    let mut g = c.benchmark_group("aes256_cbc");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.bench_function("encrypt_4k_block_fresh_key", |b| {
        b.iter(|| {
            let cipher = Aes256::new(black_box(&key));
            let mut buf = data.clone();
            cbc::encrypt_in_place(&cipher, &FIXED_IV, &mut buf).unwrap();
            buf
        })
    });
    let cipher = Aes256::new(&key);
    let mut encrypted = data.clone();
    cbc::encrypt_in_place(&cipher, &FIXED_IV, &mut encrypted).unwrap();
    g.bench_function("decrypt_4k_block", |b| {
        b.iter(|| {
            let mut buf = encrypted.clone();
            cbc::decrypt_in_place(&cipher, &FIXED_IV, &mut buf).unwrap();
            buf
        })
    });
    g.finish();
}

fn bench_gcm(c: &mut Criterion) {
    let data = block();
    let gcm = Aes256Gcm::new(&[9u8; 32]);
    let mut g = c.benchmark_group("aes256_gcm");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.bench_function("seal_4k_metadata_block", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            gcm.encrypt_in_place(&[1u8; 12], b"seg", &mut buf)
        })
    });
    g.finish();
}

fn bench_kdf(c: &mut Criterion) {
    let data = block();
    let kdf = ConvergentKdf::new(&[3u8; 32]);
    let mut g = c.benchmark_group("convergent_kdf");
    g.throughput(Throughput::Bytes(BLOCK as u64));
    g.bench_function("derive_cekey_4k_block", |b| {
        b.iter(|| kdf.derive_for_block(black_box(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench_sha256, bench_aes_cbc, bench_gcm, bench_kdf);
criterion_main!(benches);
