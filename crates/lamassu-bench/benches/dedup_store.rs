//! Criterion benchmarks of the deduplicating backend simulator.
//!
//! Measures the cost of the backend's own work (object writes and the
//! post-process dedup scan) so the shim benchmarks can be interpreted against
//! it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lamassu_storage::{DedupStore, ObjectStore, StorageProfile};
use std::hint::black_box;

fn bench_object_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup_store");
    let chunk = 64 * 1024;
    g.throughput(Throughput::Bytes(chunk as u64));
    g.bench_function("write_64k", |b| {
        let store = DedupStore::new(4096, StorageProfile::instant());
        store.create("obj").unwrap();
        let data = vec![7u8; chunk];
        let mut offset = 0u64;
        b.iter(|| {
            store
                .write_at("obj", offset % (16 * 1024 * 1024), black_box(&data))
                .unwrap();
            offset += chunk as u64;
        })
    });
    g.finish();
}

fn bench_dedup_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup_store");
    let size = 8 * 1024 * 1024;
    let store = DedupStore::new(4096, StorageProfile::instant());
    store.create("obj").unwrap();
    let data: Vec<u8> = (0..size).map(|i| (i / 4096 % 256) as u8).collect();
    store.write_at("obj", 0, &data).unwrap();
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_function("post_process_dedup_8m", |b| b.iter(|| store.run_dedup()));
    g.finish();
}

criterion_group!(benches, bench_object_write, bench_dedup_scan);
criterion_main!(benches);
