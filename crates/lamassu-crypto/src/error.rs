use std::fmt;

/// Errors produced by the primitives in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Input length is not a multiple of the cipher block size.
    InvalidLength {
        /// The offending length in bytes.
        len: usize,
        /// The required alignment in bytes.
        expected_multiple_of: usize,
    },
    /// An AES-GCM authentication tag did not verify.
    TagMismatch,
    /// An initialization vector had an unsupported length.
    InvalidIvLength {
        /// The offending IV length in bytes.
        len: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidLength {
                len,
                expected_multiple_of,
            } => write!(
                f,
                "invalid input length {len}: must be a multiple of {expected_multiple_of} bytes"
            ),
            CryptoError::TagMismatch => write!(f, "AES-GCM authentication tag mismatch"),
            CryptoError::InvalidIvLength { len } => {
                write!(f, "invalid IV length {len}: expected 12 or 16 bytes")
            }
        }
    }
}

impl std::error::Error for CryptoError {}
