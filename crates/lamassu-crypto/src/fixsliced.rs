//! Fixsliced (bitsliced) constant-time AES-256 — the wide crypto kernel.
//!
//! The T-table cipher in [`crate::aes`] indexes 1 KiB lookup tables with
//! secret-derived bytes, so its memory-access pattern leaks key/plaintext
//! bits through the cache (the classic Bernstein/Osvik–Shamir–Tromer
//! attacks). This module is the hardened replacement: the AES state is
//! *bitsliced* into eight bit-planes and every round transformation is
//! computed with pure word-parallel logic — XOR/AND/rotate on `[u64; 4]`
//! vectors — so the kernel executes **zero secret-dependent table lookups
//! and zero secret-dependent branches**.
//!
//! Bitslicing is also how the kernel gets *faster* than T-tables rather
//! than slower: each bit-plane is a `[u64; 4]` vector whose 256 bits hold
//! one bit position of **16 AES blocks**, so one pass over the round
//! function encrypts or decrypts 16 blocks at once ([`WIDE_BLOCKS`]), and
//! the fixed-shape array arithmetic autovectorizes to 256-bit SIMD. The
//! span/batch layer (PR 3/5/8) already delivers crypto work in multi-block
//! runs, which is exactly the regime where the wide kernel wins; see
//! [`crate::batch`] for the dispatch.
//!
//! # Packing
//!
//! Plane `p` holds bit `p` (LSB numbering) of every state byte. Lane word
//! `c` of a [`W`] vector holds state **column** `c`; within the word, the
//! bit at position `row*16 + blk` belongs to state byte `(row, c)` of
//! block `blk` (all 16 blocks share every word). The dimensions are chosen
//! so each linear layer hits its cheapest form:
//!
//! * **MixColumns** mixes *rows* (at stride 16 within each word), so the
//!   row rotations are whole-word `rotate_right(16k)` — element-wise, one
//!   instruction per plane;
//! * the fixslicing column realignment (`frot`) is a *uniform rotation
//!   of the four column lanes* — a single register shuffle per use, and
//!   the only non-element-wise operation in the entire round function.
//!
//! ShiftRows itself is never executed: the kernel is *fixsliced*
//! (Adomnicai–Peyrin style), letting the ShiftRows permutation accumulate
//! across rounds, compensating inside MixColumns, and paying the one
//! residual `ShiftRows²` at the end of the pass.
//!
//! # The S-box circuit
//!
//! SubBytes evaluates the Boyar–Peralta 113-gate circuit for the AES S-box
//! (the same straight-line program BearSSL's `aes_ct` uses), and
//! InvSubBytes reuses the *forward* circuit conjugated with the inverse
//! affine map: since `S = A ∘ I` with `I` the (involutive) GF(2^8)
//! inversion, `S⁻¹ = I ∘ A⁻¹ = A⁻¹ ∘ S ∘ A⁻¹`. Both are validated
//! exhaustively against the FIPS-197 tables in this module's tests.
//!
//! The key schedule runs SubWord through the same circuit, so key expansion
//! is constant-time too — unlike the T-table schedule, which indexes the
//! S-box table with key bytes. This matters on the convergent write path,
//! where a fresh *secret per-block key* is expanded for every data block.
//!
//! # What stays table-driven
//!
//! GHASH keeps its Shoup nibble tables ([`crate::ghash`]): its table
//! indices are derived from *ciphertext and AAD*, which the cache-timing
//! threat model already hands to the attacker, not from key material. The
//! T-table path itself survives as the differential oracle — see
//! `CryptoBackend::TTable` and the `wide_crypto` bench.

use crate::{Iv128, Key256};
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// `u64` lane words per bit-plane vector (256 state bits per plane).
pub const WIDE_LANES: usize = 4;

/// AES blocks processed per wide pass (all interleaved through each lane word).
pub const WIDE_BLOCKS: usize = 4 * WIDE_LANES;

/// Bytes consumed by one wide pass (16 AES blocks).
pub const WIDE_BYTES: usize = 16 * WIDE_BLOCKS;

/// Number of AES-256 rounds.
const ROUNDS: usize = 14;

/// Round constants for the key schedule (public values).
const RCON: [u8; 7] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40];

/// One bit-plane vector: 256 bits = one bit position of 16 AES blocks.
///
/// All kernel arithmetic is element-wise on this fixed-size array, which
/// LLVM lowers to 256-bit SIMD where available; there is no secret-indexed
/// memory access anywhere in the type's operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct W(pub [u64; WIDE_LANES]);

impl W {
    /// The all-zero vector.
    pub const ZERO: W = W([0; WIDE_LANES]);
    /// The all-ones vector (used for the S-box affine constant).
    pub const ONES: W = W([!0; WIDE_LANES]);

    #[inline(always)]
    fn ror(self, k: u32) -> W {
        W(std::array::from_fn(|i| self.0[i].rotate_right(k)))
    }

    #[inline(always)]
    fn shl(self, k: u32) -> W {
        W(std::array::from_fn(|i| self.0[i] << k))
    }

    #[inline(always)]
    fn shr(self, k: u32) -> W {
        W(std::array::from_fn(|i| self.0[i] >> k))
    }

    #[inline(always)]
    fn mask(self, m: u64) -> W {
        W(std::array::from_fn(|i| self.0[i] & m))
    }
}

impl BitXor for W {
    type Output = W;
    #[inline(always)]
    fn bitxor(self, o: W) -> W {
        W(std::array::from_fn(|i| self.0[i] ^ o.0[i]))
    }
}

impl BitAnd for W {
    type Output = W;
    #[inline(always)]
    fn bitand(self, o: W) -> W {
        W(std::array::from_fn(|i| self.0[i] & o.0[i]))
    }
}

impl BitOr for W {
    type Output = W;
    #[inline(always)]
    fn bitor(self, o: W) -> W {
        W(std::array::from_fn(|i| self.0[i] | o.0[i]))
    }
}

impl Not for W {
    type Output = W;
    #[inline(always)]
    fn not(self) -> W {
        W(std::array::from_fn(|i| !self.0[i]))
    }
}

/// The bitsliced state: plane `p` holds bit `p` of every byte.
pub type Planes = [W; 8];

/// Round keys in bitsliced form, ready for `add_round_key`, with the
/// fixsliced representation of each round (`ShiftRows^±r`) pre-baked into
/// the key bytes' column positions. A schedule is therefore
/// direction-specific: [`Aes256Fix::packed_enc_keys`] for
/// [`encrypt_planes`], [`Aes256Fix::packed_dec_keys`] for
/// [`decrypt_planes`].
pub struct PackedKeys {
    rks: [Planes; ROUNDS + 1],
    enc: bool,
}

// ---------------------------------------------------------------------------
// Packing: 256 bytes (16 blocks) <-> 8 bit-plane vectors.
// ---------------------------------------------------------------------------

/// Byte-interleaves the four bytes of `lo` with the four bytes of `hi`:
/// `l0 h0 l1 h1 l2 h2 l3 h3` (a zip, 10 word ops).
#[inline(always)]
fn zip_bytes(lo: u32, hi: u32) -> u64 {
    let mut x = lo as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    let mut y = hi as u64;
    y = (y | (y << 16)) & 0x0000_FFFF_0000_FFFF;
    y = (y | (y << 8)) & 0x00FF_00FF_00FF_00FF;
    x | (y << 8)
}

/// Inverse of [`zip_bytes`].
#[inline(always)]
fn unzip_bytes(z: u64) -> (u32, u32) {
    let mut x = z & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    let mut y = (z >> 8) & 0x00FF_00FF_00FF_00FF;
    y = (y | (y >> 8)) & 0x0000_FFFF_0000_FFFF;
    y = (y | (y >> 16)) & 0x0000_0000_FFFF_FFFF;
    (x as u32, y as u32)
}

/// One delta-swap stage of the 8-word orthogonalization: exchanges
/// word-index bit `t` with bit-position bit `t` for the pair `(a, b)`
/// (`b = a | 1<<t`, `d = 1<<t`, `m` = positions with bit `t` clear).
#[inline(always)]
fn dswap(q: &mut [W; 8], a: usize, b: usize, d: u32, m: u64) {
    let t = (q[a].shr(d) ^ q[b]).mask(m);
    q[b] = q[b] ^ t;
    q[a] = q[a] ^ t.shl(d);
}

/// The 3-stage bit-matrix transpose shared by [`pack`] and [`unpack`].
///
/// Each stage is an involution and the stages touch disjoint index bits,
/// so the whole transform is self-inverse.
#[inline(always)]
fn transpose(q: &mut [W; 8]) {
    const M0: u64 = 0x5555_5555_5555_5555;
    const M1: u64 = 0x3333_3333_3333_3333;
    const M2: u64 = 0x0F0F_0F0F_0F0F_0F0F;
    dswap(q, 0, 1, 1, M0);
    dswap(q, 2, 3, 1, M0);
    dswap(q, 4, 5, 1, M0);
    dswap(q, 6, 7, 1, M0);
    dswap(q, 0, 2, 2, M1);
    dswap(q, 1, 3, 2, M1);
    dswap(q, 4, 6, 2, M1);
    dswap(q, 5, 7, 2, M1);
    dswap(q, 0, 4, 4, M2);
    dswap(q, 1, 5, 4, M2);
    dswap(q, 2, 6, 4, M2);
    dswap(q, 3, 7, 4, M2);
}

/// Packs 16 consecutive AES blocks (256 bytes) into bitsliced planes.
///
/// Word `j` of the pre-transpose staging holds, for each column lane, the
/// bytes of blocks `j` and `j + 8` zipped pairwise; the shared 3-stage
/// transpose then scatters byte bits onto planes so that plane `p`, lane
/// `c`, bit `row*16 + blk` is bit `p` of state byte `(row, c)` of block
/// `blk`.
#[inline]
pub fn pack(bytes: &[u8; WIDE_BYTES]) -> Planes {
    let mut q = [W::ZERO; 8];
    for (j, word) in q.iter_mut().enumerate() {
        let mut w = [0u64; WIDE_LANES];
        for (c, lane) in w.iter_mut().enumerate() {
            let lo = u32::from_le_bytes(
                bytes[j * 16 + c * 4..j * 16 + c * 4 + 4]
                    .try_into()
                    .unwrap(),
            );
            let hi = u32::from_le_bytes(
                bytes[(j + 8) * 16 + c * 4..(j + 8) * 16 + c * 4 + 4]
                    .try_into()
                    .unwrap(),
            );
            *lane = zip_bytes(lo, hi);
        }
        *word = W(w);
    }
    transpose(&mut q);
    q
}

/// Unpacks bitsliced planes back into 16 consecutive AES blocks.
#[inline]
pub fn unpack(planes: &Planes, bytes: &mut [u8; WIDE_BYTES]) {
    let mut q = *planes;
    transpose(&mut q);
    for (j, w) in q.iter().enumerate() {
        for (c, lane) in w.0.iter().enumerate() {
            let (lo, hi) = unzip_bytes(*lane);
            bytes[j * 16 + c * 4..j * 16 + c * 4 + 4].copy_from_slice(&lo.to_le_bytes());
            bytes[(j + 8) * 16 + c * 4..(j + 8) * 16 + c * 4 + 4]
                .copy_from_slice(&hi.to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// SubBytes / InvSubBytes: the Boyar–Peralta circuit.
// ---------------------------------------------------------------------------

/// The Boyar–Peralta 113-gate AES S-box as a straight-line program over
/// any GF(2) algebra. `x[0]` is the **most significant** input bit and the
/// returned `s[0]` the most significant output bit (the circuit's native
/// convention; [`sub_bytes`] adapts it to the LSB-numbered planes).
#[inline(always)]
fn bp_sbox(x: [W; 8]) -> [W; 8] {
    let (x0, x1, x2, x3, x4, x5, x6, x7) = (x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7]);
    // Top linear layer: 21 shared sums of the input bits.
    let y14 = x3 ^ x5;
    let y13 = x0 ^ x6;
    let y9 = x0 ^ x3;
    let y8 = x0 ^ x5;
    let t0 = x1 ^ x2;
    let y1 = t0 ^ x7;
    let y4 = y1 ^ x3;
    let y12 = y13 ^ y14;
    let y2 = y1 ^ x0;
    let y5 = y1 ^ x6;
    let y3 = y5 ^ y8;
    let t1 = x4 ^ y12;
    let y15 = t1 ^ x5;
    let y20 = t1 ^ x1;
    let y6 = y15 ^ x7;
    let y10 = y15 ^ t0;
    let y11 = y20 ^ y9;
    let y7 = x7 ^ y11;
    let y17 = y10 ^ y11;
    let y19 = y10 ^ y8;
    let y16 = t0 ^ y11;
    let y21 = y13 ^ y16;
    let y18 = x0 ^ y16;
    // Middle nonlinear layer: the GF(2^4) inversion core (32 AND gates).
    let t2 = y12 & y15;
    let t3 = y3 & y6;
    let t4 = t3 ^ t2;
    let t5 = y4 & x7;
    let t6 = t5 ^ t2;
    let t7 = y13 & y16;
    let t8 = y5 & y1;
    let t9 = t8 ^ t7;
    let t10 = y2 & y7;
    let t11 = t10 ^ t7;
    let t12 = y9 & y11;
    let t13 = y14 & y17;
    let t14 = t13 ^ t12;
    let t15 = y8 & y10;
    let t16 = t15 ^ t12;
    let t17 = t4 ^ t14;
    let t18 = t6 ^ t16;
    let t19 = t9 ^ t14;
    let t20 = t11 ^ t16;
    let t21 = t17 ^ y20;
    let t22 = t18 ^ y19;
    let t23 = t19 ^ y21;
    let t24 = t20 ^ y18;
    let t25 = t21 ^ t22;
    let t26 = t21 & t23;
    let t27 = t24 ^ t26;
    let t28 = t25 & t27;
    let t29 = t28 ^ t22;
    let t30 = t23 ^ t24;
    let t31 = t22 ^ t26;
    let t32 = t31 & t30;
    let t33 = t32 ^ t24;
    let t34 = t23 ^ t33;
    let t35 = t27 ^ t33;
    let t36 = t24 & t35;
    let t37 = t36 ^ t34;
    let t38 = t27 ^ t36;
    let t39 = t29 & t38;
    let t40 = t25 ^ t39;
    let t41 = t40 ^ t37;
    let t42 = t29 ^ t33;
    let t43 = t29 ^ t40;
    let t44 = t33 ^ t37;
    let t45 = t42 ^ t41;
    let z0 = t44 & y15;
    let z1 = t37 & y6;
    let z2 = t33 & x7;
    let z3 = t43 & y16;
    let z4 = t40 & y1;
    let z5 = t29 & y7;
    let z6 = t42 & y11;
    let z7 = t45 & y17;
    let z8 = t41 & y10;
    let z9 = t44 & y12;
    let z10 = t37 & y3;
    let z11 = t33 & y4;
    let z12 = t43 & y13;
    let z13 = t40 & y5;
    let z14 = t29 & y2;
    let z15 = t42 & y9;
    let z16 = t45 & y14;
    let z17 = t41 & y8;
    // Bottom linear layer, folding in the affine map (the XNORs realise
    // the 0x63 constant on output bits 1, 2, 6 and 7).
    let t46 = z15 ^ z16;
    let t47 = z10 ^ z11;
    let t48 = z5 ^ z13;
    let t49 = z9 ^ z10;
    let t50 = z2 ^ z12;
    let t51 = z2 ^ z5;
    let t52 = z7 ^ z8;
    let t53 = z0 ^ z3;
    let t54 = z6 ^ z7;
    let t55 = z16 ^ z17;
    let t56 = z12 ^ t48;
    let t57 = t50 ^ t53;
    let t58 = z4 ^ t46;
    let t59 = z3 ^ t54;
    let t60 = t46 ^ t57;
    let t61 = z14 ^ t57;
    let t62 = t52 ^ t58;
    let t63 = t49 ^ t58;
    let t64 = z4 ^ t59;
    let t65 = t61 ^ t62;
    let t66 = z1 ^ t63;
    let s0 = t59 ^ t63;
    let s6 = !(t56 ^ t62);
    let s7 = !(t48 ^ t60);
    let t67 = t64 ^ t65;
    let s3 = t53 ^ t66;
    let s4 = t51 ^ t66;
    let s5 = t47 ^ t65;
    let s1 = !(t64 ^ s3);
    let s2 = !(t55 ^ t67);
    [s0, s1, s2, s3, s4, s5, s6, s7]
}

/// SubBytes on the bitsliced state (planes LSB-first, circuit MSB-first).
#[inline(always)]
fn sub_bytes(p: &mut Planes) {
    let s = bp_sbox([p[7], p[6], p[5], p[4], p[3], p[2], p[1], p[0]]);
    *p = [s[7], s[6], s[5], s[4], s[3], s[2], s[1], s[0]];
}

/// The inverse of the S-box affine map: `b_i = a_{i+2} ^ a_{i+5} ^ a_{i+7}
/// ^ 0x05_i` (indices mod 8, LSB numbering).
#[inline(always)]
fn inv_affine(p: &Planes) -> Planes {
    let mut out = [W::ZERO; 8];
    for i in 0..8 {
        out[i] = p[(i + 2) % 8] ^ p[(i + 5) % 8] ^ p[(i + 7) % 8];
    }
    // Constant 0x05: complement bits 0 and 2.
    out[0] = !out[0];
    out[2] = !out[2];
    out
}

/// InvSubBytes via `S⁻¹ = A⁻¹ ∘ S ∘ A⁻¹` (see the module docs).
#[inline(always)]
fn inv_sub_bytes(p: &mut Planes) {
    *p = inv_affine(p);
    sub_bytes(p);
    *p = inv_affine(p);
}

/// The GF(2⁸) field inversion `I = A⁻¹ ∘ S`: the Boyar–Peralta circuit
/// with the inverse-affine epilogue.
///
/// The encrypt round uses this instead of plain [`sub_bytes`] for codegen
/// reasons: LLVM's SLP vectorizer reliably vectorizes the S-box circuit
/// when its outputs feed the uniform `inv_affine` trees (as in the decrypt
/// round), but leaves the bare circuit scalar. The affine map `A` is
/// re-applied as [`fwd_affine_linear`] plus a key-folded constant, so the
/// composition is still exactly SubBytes.
#[inline(always)]
fn field_inv(p: &mut Planes) {
    sub_bytes(p);
    *p = inv_affine(p);
}

/// The linear part `M` of the S-box affine map:
/// `b_i = a_i ^ a_{i+4} ^ a_{i+5} ^ a_{i+6} ^ a_{i+7}` (indices mod 8,
/// LSB numbering). The constant `0x63` lives in the round keys
/// ([`fold_sbox_const`]).
#[inline(always)]
fn fwd_affine_linear(p: &Planes) -> Planes {
    let mut out = [W::ZERO; 8];
    for i in 0..8 {
        out[i] = p[i] ^ p[(i + 4) % 8] ^ p[(i + 5) % 8] ^ p[(i + 6) % 8] ^ p[(i + 7) % 8];
    }
    out
}

// ---------------------------------------------------------------------------
// ShiftRows / MixColumns and their inverses.
// ---------------------------------------------------------------------------

/// ShiftRows: row `r` rotates left by `r` columns — within each row's
/// 16-bit field the four 4-bit column nibbles rotate by `4r` bits.
///
/// Kept as the *reference* layer for tests only: the round functions are
/// fixsliced and never materialize ShiftRows (see [`mix_columns_cycled`]).
#[cfg(test)]
fn shift_rows(p: &mut Planes) {
    for w in p.iter_mut() {
        let x = *w;
        // Row r takes its value from column lane c + r: blend the four
        // lane rotations with per-row field masks.
        *w = x.mask(0x0000_0000_0000_FFFF)
            | frot::<1>(x).mask(0x0000_0000_FFFF_0000)
            | frot::<2>(x).mask(0x0000_FFFF_0000_0000)
            | frot::<3>(x).mask(0xFFFF_0000_0000_0000);
    }
}

/// InvShiftRows: row `r` rotates right by `r` columns.
#[cfg(test)]
fn inv_shift_rows(p: &mut Planes) {
    for w in p.iter_mut() {
        let x = *w;
        *w = x.mask(0x0000_0000_0000_FFFF)
            | frot::<3>(x).mask(0x0000_0000_FFFF_0000)
            | frot::<2>(x).mask(0x0000_FFFF_0000_0000)
            | frot::<1>(x).mask(0xFFFF_0000_0000_0000);
    }
}

/// Rotates the column lanes so that output column `c` reads input column
/// `c + M`: the fixslicing realignment that stands in for the skipped
/// ShiftRows. A single register shuffle; `M` is a public round constant.
#[inline(always)]
fn frot<const M: usize>(x: W) -> W {
    let [a, b, c, d] = x.0;
    match M & 3 {
        1 => W([b, c, d, a]),
        2 => W([c, d, a, b]),
        3 => W([d, a, b, c]),
        _ => x,
    }
}

/// Applies `ShiftRows²` (rows 1 and 3 swap their column pairs; rows 0 and
/// 2 are fixed): the one residual permutation a fixsliced pass owes after
/// 14 skipped ShiftRows, since `SR^14 = SR^±2`.
#[inline(always)]
fn shift_rows_sq(p: &mut Planes) {
    for w in p.iter_mut() {
        let x = *w;
        let y = frot::<2>(x);
        *w = x.mask(0x0000_FFFF_0000_FFFF) | y.mask(0xFFFF_0000_FFFF_0000);
    }
}

/// GF(2^8) ×2 (`xtime`) on a plane set: relabel planes and fold the AES
/// polynomial's taps (bit 7 feeds bits 0, 1, 3, 4).
#[inline(always)]
fn xtime_planes(t: &Planes) -> Planes {
    [
        t[7],
        t[0] ^ t[7],
        t[1],
        t[2] ^ t[7],
        t[3] ^ t[7],
        t[4],
        t[5],
        t[6],
    ]
}

/// MixColumns, *fixsliced*: in round `r` the state sits in representation
/// `SR^-r` (ShiftRows has been skipped `r` times), so the conjugated layer
/// `SR^-r ∘ MC ∘ SR^r` must read row `ρ+k` at column `c + rk` — the plain
/// row rotation (`ror 16k` in this packing) composed with a column-nibble
/// realignment [`frot`] by `m1 = r mod 4` / `m2 = 2r mod 4`. With
/// `t = s ^ rot1(s)`: `out = xtime(t) ^ rot1(s) ^ rot2(t)`. Every fourth
/// round both realignments vanish; on average the compensation costs less
/// than half of a materialized ShiftRows.
#[inline(always)]
fn mix_columns_cycled<const M1: usize, const M2: usize>(p: &mut Planes) {
    let s = *p;
    let mut t = [W::ZERO; 8];
    let mut r1 = [W::ZERO; 8];
    for i in 0..8 {
        r1[i] = frot::<M1>(s[i].ror(16));
        t[i] = s[i] ^ r1[i];
    }
    let xt = xtime_planes(&t);
    for i in 0..8 {
        p[i] = xt[i] ^ r1[i] ^ frot::<M2>(t[i].ror(32));
    }
}

/// InvMixColumns as `MC ∘ g` with `g(s) = s ^ xtime²(s ^ rot2(s))` (the
/// 4-coefficient decomposition `[14,11,13,9] = [2,3,1,1]·g`), conjugated
/// for fixsliced decryption: at step `u` the realignments are
/// `m1 = -u mod 4`, `m2 = -2u mod 4`.
#[inline(always)]
fn inv_mix_columns_cycled<const M1: usize, const M2: usize>(p: &mut Planes) {
    let s = *p;
    let mut u = [W::ZERO; 8];
    for i in 0..8 {
        u[i] = s[i] ^ frot::<M2>(s[i].ror(32));
    }
    let u = xtime_planes(&xtime_planes(&u));
    for i in 0..8 {
        p[i] = s[i] ^ u[i];
    }
    mix_columns_cycled::<M1, M2>(p);
}

/// XORs one packed round key into the state.
#[inline(always)]
fn add_round_key(p: &mut Planes, rk: &Planes) {
    for i in 0..8 {
        p[i] = p[i] ^ rk[i];
    }
}

/// Folds the S-box affine constant `0x63` into an encrypt round key.
///
/// The encrypt round computes SubBytes as `A ∘ I` with the inversion `I`
/// coming from [`field_inv`] and only the *linear* part `M` of the affine
/// map applied in the round ([`fwd_affine_linear`]); the constant is a
/// per-byte XOR of `0x63`, which commutes through MixColumns (uniform
/// columns are MC fixed points) straight into the next AddRoundKey. Bits
/// 0, 1, 5 and 6 of `0x63` are set, so those key planes are complemented.
/// Key-schedule-time only; never on the data path.
fn fold_sbox_const(rk: &mut Planes) {
    for i in [0usize, 1, 5, 6] {
        rk[i] = !rk[i];
    }
}

// ---------------------------------------------------------------------------
// The round function over packed state.
// ---------------------------------------------------------------------------

/// Encrypts 16 packed blocks with an encrypt-baked key schedule.
///
/// Fixsliced: no round ever executes ShiftRows. The permutation
/// accumulates in the state representation, `mix_columns_cycled`
/// compensates, the round keys were pre-permuted to match, and the single
/// residual `SR²` is paid once at the end of the pass.
#[inline]
pub fn encrypt_planes(rk: &PackedKeys, p: &mut Planes) {
    debug_assert!(rk.enc, "encrypt_planes needs packed_enc_keys");
    // One full middle round: SubBytes, fixsliced MixColumns, AddRoundKey.
    // The realignment amounts are const generics so every round body is
    // branch-free straight-line code the vectorizer can keep in registers;
    // they cycle with period 4 (`r mod 4`, `2r mod 4`).
    #[inline(never)]
    fn round<const M1: usize, const M2: usize>(p: &mut Planes, rk: &Planes) {
        field_inv(p);
        *p = fwd_affine_linear(p);
        mix_columns_cycled::<M1, M2>(p);
        add_round_key(p, rk);
    }
    add_round_key(p, &rk.rks[0]);
    for r in 1..ROUNDS {
        match r & 3 {
            1 => round::<1, 2>(p, &rk.rks[r]),
            2 => round::<2, 0>(p, &rk.rks[r]),
            3 => round::<3, 2>(p, &rk.rks[r]),
            _ => round::<0, 0>(p, &rk.rks[r]),
        }
    }
    field_inv(p);
    *p = fwd_affine_linear(p);
    add_round_key(p, &rk.rks[ROUNDS]);
    shift_rows_sq(p);
}

/// Decrypts 16 packed blocks (the straight inverse cipher — no
/// equivalent-inverse key transform is needed in bitsliced form), with a
/// decrypt-baked key schedule. Fixsliced exactly like [`encrypt_planes`],
/// with the representation drifting through `SR^+u`.
#[inline]
pub fn decrypt_planes(rk: &PackedKeys, p: &mut Planes) {
    debug_assert!(!rk.enc, "decrypt_planes needs packed_dec_keys");
    // Inverse middle round at fixslicing step `u = ROUNDS - r`:
    // realignments `-u mod 4` / `-2u mod 4`, again period 4.
    #[inline(never)]
    fn round<const M1: usize, const M2: usize>(p: &mut Planes, rk: &Planes) {
        inv_sub_bytes(p);
        add_round_key(p, rk);
        inv_mix_columns_cycled::<M1, M2>(p);
    }
    add_round_key(p, &rk.rks[ROUNDS]);
    for r in (1..ROUNDS).rev() {
        match (ROUNDS - r) & 3 {
            1 => round::<3, 2>(p, &rk.rks[r]),
            2 => round::<2, 0>(p, &rk.rks[r]),
            3 => round::<1, 2>(p, &rk.rks[r]),
            _ => round::<0, 0>(p, &rk.rks[r]),
        }
    }
    inv_sub_bytes(p);
    add_round_key(p, &rk.rks[0]);
    shift_rows_sq(p);
}

// ---------------------------------------------------------------------------
// Constant-time key schedule.
// ---------------------------------------------------------------------------

/// Runs the S-box circuit over the four bytes of one key-schedule word,
/// bitslicing them into the low four bits of a single lane (branch-free).
fn ct_sub_word(b: [u8; 4]) -> [u8; 4] {
    let mut words = [b];
    ct_sub_word_lanes(&mut words);
    words[0]
}

/// SubWord over one key-schedule word *per chain*, all through a single
/// S-box circuit pass: word `k`'s four bytes occupy lane bits `4k..4k+4`,
/// so expanding up to [`WIDE_BLOCKS`] schedules in lockstep pays the
/// circuit once per schedule step instead of once per chain.
fn ct_sub_word_lanes(words: &mut [[u8; 4]]) {
    debug_assert!(words.len() <= WIDE_BLOCKS);
    let mut planes = [W::ZERO; 8];
    for (k, word) in words.iter().enumerate() {
        for (j, byte) in word.iter().enumerate() {
            let pos = (k * 4 + j) as u64;
            for (p, plane) in planes.iter_mut().enumerate() {
                plane.0[0] |= (((byte >> p) & 1) as u64) << pos;
            }
        }
    }
    sub_bytes(&mut planes);
    for (k, word) in words.iter_mut().enumerate() {
        for (j, byte) in word.iter_mut().enumerate() {
            let pos = k * 4 + j;
            *byte = 0;
            for (p, plane) in planes.iter().enumerate() {
                *byte |= (((plane.0[0] >> pos) & 1) as u8) << p;
            }
        }
    }
}

/// An expanded AES-256 key for the fixsliced kernel.
///
/// Functionally interchangeable with [`crate::aes::Aes256`] (same cipher,
/// same test vectors) but the expansion itself is constant-time: SubWord
/// goes through the bitsliced S-box circuit instead of the lookup table,
/// so expanding a secret per-block convergent key leaks nothing through
/// the cache.
#[derive(Clone)]
pub struct Aes256Fix {
    /// Encryption round keys: (ROUNDS + 1) × 4 big-endian words.
    enc_keys: [u32; 4 * (ROUNDS + 1)],
}

impl Aes256Fix {
    /// Expands `key` with the constant-time schedule.
    pub fn new(key: &Key256) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..8 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in 8..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 8 == 0 {
                let s = ct_sub_word([temp[1], temp[2], temp[3], temp[0]]);
                temp = [s[0] ^ RCON[i / 8 - 1], s[1], s[2], s[3]];
            } else if i % 8 == 4 {
                temp = ct_sub_word(temp);
            }
            for j in 0..4 {
                w[i][j] = w[i - 8][j] ^ temp[j];
            }
        }
        let mut enc_keys = [0u32; 4 * (ROUNDS + 1)];
        for (i, word) in w.iter().enumerate() {
            enc_keys[i] = u32::from_be_bytes(*word);
        }
        Aes256Fix { enc_keys }
    }

    /// The four round-key bytes that land in packed column `c` of round
    /// `r` (one per state row), gathered as one big-endian word.
    ///
    /// Fixslicing bake: the key byte for `(row, col)` lands at the column
    /// the drifted state representation reads it from — `col + r·row` when
    /// encrypting (`SR^-r`), `col − (14−r)·row` when decrypting (`SR^+u`)
    /// — so column `c` pulls its row-`row` byte from source column
    /// `c + k·row (mod 4)` with `k = 4 − r mod 4` (encrypt) or
    /// `k = 14 − r` (decrypt).
    #[inline]
    fn gather_word(&self, r: usize, c: usize, enc: bool) -> u32 {
        let k = if enc { 4 - r % 4 } else { ROUNDS - r };
        let mut g = 0u32;
        for row in 0..4 {
            let col = (c + k * row) % 4;
            g |= ((self.enc_keys[4 * r + col] >> (24 - 8 * row)) & 0xFF) << (24 - 8 * row);
        }
        g
    }

    /// Packs the schedule in *broadcast* form: every block lane gets the
    /// same round keys (the shared-key passes: ECB, CTR, CBC decrypt).
    fn packed_keys(&self, enc: bool) -> PackedKeys {
        let mut rks = [[W::ZERO; 8]; ROUNDS + 1];
        for (r, rk) in rks.iter_mut().enumerate() {
            for c in 0..4 {
                let g = self.gather_word(r, c, enc);
                for (p, plane) in rk.iter_mut().enumerate() {
                    // One bit per row at 16·row, widened to a 16-block
                    // broadcast field by the multiply.
                    plane.0[c] |= spread_row_bits(g, p).wrapping_mul(0xFFFF);
                }
            }
            if enc && r >= 1 {
                fold_sbox_const(rk);
            }
        }
        PackedKeys { rks, enc }
    }

    /// Broadcast schedule baked for [`encrypt_planes`].
    pub fn packed_enc_keys(&self) -> PackedKeys {
        self.packed_keys(true)
    }

    /// Broadcast schedule baked for [`decrypt_planes`].
    pub fn packed_dec_keys(&self) -> PackedKeys {
        self.packed_keys(false)
    }

    /// Encrypts a single 16-byte block (one active lane; used for GCM's
    /// J0/tag blocks and per-block IV derivation, and as the scalar
    /// constant-time fallback).
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut buf = [0u8; WIDE_BYTES];
        buf[..16].copy_from_slice(block);
        let mut p = pack(&buf);
        encrypt_planes(&self.packed_enc_keys(), &mut p);
        unpack(&p, &mut buf);
        buf[..16].try_into().unwrap()
    }

    /// Decrypts a single 16-byte block (one active lane).
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut buf = [0u8; WIDE_BYTES];
        buf[..16].copy_from_slice(block);
        let mut p = pack(&buf);
        decrypt_planes(&self.packed_dec_keys(), &mut p);
        unpack(&p, &mut buf);
        buf[..16].try_into().unwrap()
    }
}

// ---------------------------------------------------------------------------
// Wide span helpers: ECB / CBC / CTR over multi-block runs.
//
// All staging state is fixed-size and stack-resident (one 256-byte pass
// buffer), so the warm data path stays zero-alloc. Runs shorter than a full
// pass ride the same wide kernel with idle lanes — under the fixsliced
// backend there is *no* table-driven fallback for tails, so the
// constant-time guarantee covers every input length.
// ---------------------------------------------------------------------------

/// Spreads bit `p` of each row byte of gathered word `g` (big-endian, row
/// 0 in the top byte) to a single bit at position `16·row`: callers shift
/// the result into a block lane, or multiply by `0xFFFF` to broadcast it
/// across all 16 lanes.
#[inline]
fn spread_row_bits(g: u32, p: usize) -> u64 {
    let u = ((g >> p) & 0x0101_0101) as u64;
    ((u >> 24) & 1) | (u & 0x1_0000) | ((u & 0x100) << 24) | ((u & 1) << 48)
}

/// Expands up to 16 key schedules in lockstep, one wide
/// [`ct_sub_word_lanes`] circuit pass per SubWord step of the schedule
/// (instead of one circuit per step *per chain*). This is how the
/// multi-chain CBC entry points amortize the constant-time expansion of
/// fresh per-block convergent keys.
fn expand_lanes(keys: &[Key256], out: &mut [Aes256Fix]) {
    let n = keys.len();
    debug_assert!(n <= WIDE_BLOCKS && out.len() >= n);
    let mut w = [[[0u8; 4]; 4 * (ROUNDS + 1)]; WIDE_BLOCKS];
    for (chain, key) in w.iter_mut().zip(keys) {
        for i in 0..8 {
            chain[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
    }
    let mut temps = [[0u8; 4]; WIDE_BLOCKS];
    for i in 8..4 * (ROUNDS + 1) {
        match i % 8 {
            0 => {
                for (t, chain) in temps[..n].iter_mut().zip(&w) {
                    let prev = chain[i - 1];
                    *t = [prev[1], prev[2], prev[3], prev[0]];
                }
                ct_sub_word_lanes(&mut temps[..n]);
                for t in &mut temps[..n] {
                    t[0] ^= RCON[i / 8 - 1];
                }
            }
            4 => {
                for (t, chain) in temps[..n].iter_mut().zip(&w) {
                    *t = chain[i - 1];
                }
                ct_sub_word_lanes(&mut temps[..n]);
            }
            _ => {
                for (t, chain) in temps[..n].iter_mut().zip(&w) {
                    *t = chain[i - 1];
                }
            }
        }
        for (t, chain) in temps[..n].iter().zip(&mut w) {
            for j in 0..4 {
                chain[i][j] = chain[i - 8][j] ^ t[j];
            }
        }
    }
    for (slot, chain) in out[..n].iter_mut().zip(&w) {
        let mut enc_keys = [0u32; 4 * (ROUNDS + 1)];
        for (i, word) in chain.iter().enumerate() {
            enc_keys[i] = u32::from_be_bytes(*word);
        }
        *slot = Aes256Fix { enc_keys };
    }
}

/// Packs the schedules of up to 16 ciphers in *per-lane* form: block lane
/// `i` gets `ciphers[i]`'s round keys (the multi-chain CBC-encrypt pass,
/// where every convergent chain has its own key). Missing lanes are zero.
fn packed_keys_lanes(ciphers: &[Aes256Fix]) -> PackedKeys {
    debug_assert!(ciphers.len() <= WIDE_BLOCKS);
    let mut rks = [[W::ZERO; 8]; ROUNDS + 1];
    for (r, rk) in rks.iter_mut().enumerate() {
        for (blk, cipher) in ciphers.iter().enumerate() {
            for c in 0..4 {
                let g = cipher.gather_word(r, c, true);
                for (p, plane) in rk.iter_mut().enumerate() {
                    plane.0[c] |= spread_row_bits(g, p) << blk;
                }
            }
        }
        if r >= 1 {
            fold_sbox_const(rk);
        }
    }
    PackedKeys { rks, enc: true }
}

/// Encrypts one staged pass worth of blocks in place.
#[inline(never)]
fn encrypt_pass(rk: &PackedKeys, buf: &mut [u8; WIDE_BYTES]) {
    let mut p = pack(buf);
    encrypt_planes(rk, &mut p);
    unpack(&p, buf);
}

/// Decrypts one staged pass worth of blocks in place.
#[inline(never)]
fn decrypt_pass(rk: &PackedKeys, buf: &mut [u8; WIDE_BYTES]) {
    let mut p = pack(buf);
    decrypt_planes(rk, &mut p);
    unpack(&p, buf);
}

/// ECB-encrypts `data` (a multiple of 16 bytes) under one cipher,
/// 16 blocks per pass; the tail pass runs with idle lanes.
///
/// This is the constant-time form of Equation 1's key mixing: the batch
/// KDF stages whole runs of block hashes through here.
pub fn ecb_encrypt(cipher: &Aes256Fix, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(16),
        "ECB input must be block-aligned"
    );
    let rk = cipher.packed_enc_keys();
    ecb_passes(&rk, data, false);
}

/// ECB-decrypts `data` (inverse of [`ecb_encrypt`]).
pub fn ecb_decrypt(cipher: &Aes256Fix, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(16),
        "ECB input must be block-aligned"
    );
    let rk = cipher.packed_dec_keys();
    ecb_passes(&rk, data, true);
}

fn ecb_passes(rk: &PackedKeys, data: &mut [u8], decrypt: bool) {
    let mut chunks = data.chunks_exact_mut(WIDE_BYTES);
    let mut buf = [0u8; WIDE_BYTES];
    for chunk in &mut chunks {
        buf.copy_from_slice(chunk);
        if decrypt {
            decrypt_pass(rk, &mut buf);
        } else {
            encrypt_pass(rk, &mut buf);
        }
        chunk.copy_from_slice(&buf);
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let mut buf = [0u8; WIDE_BYTES];
        buf[..tail.len()].copy_from_slice(tail);
        if decrypt {
            decrypt_pass(rk, &mut buf);
        } else {
            encrypt_pass(rk, &mut buf);
        }
        tail.copy_from_slice(&buf[..tail.len()]);
    }
}

/// CBC-decrypts one contiguous chain in place. CBC decryption is embar-
/// rassingly parallel (every block needs only the *ciphertext* of its
/// predecessor), so a 4 KiB data block fills all 16 lanes for 16 passes.
pub fn cbc_decrypt(cipher: &Aes256Fix, iv: &Iv128, data: &mut [u8]) {
    let rk = cipher.packed_dec_keys();
    cbc_decrypt_run(&rk, iv, data);
}

/// CBC-decrypts one chain with a pre-packed schedule (shared-key form).
#[inline(never)]
fn cbc_decrypt_run(rk: &PackedKeys, iv: &Iv128, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(16),
        "CBC input must be block-aligned"
    );
    let nblocks = data.len() / 16;
    let mut buf = [0u8; WIDE_BYTES];
    // Ciphertext of the block preceding the current pass: earlier passes
    // overwrite their ciphertext with plaintext, so it must be carried.
    let mut carry = *iv;
    let mut start = 0usize;
    while start < nblocks {
        let take = (nblocks - start).min(WIDE_BLOCKS);
        buf[..take * 16].copy_from_slice(&data[start * 16..(start + take) * 16]);
        decrypt_pass(rk, &mut buf);
        let next_carry: [u8; 16] = data[(start + take - 1) * 16..(start + take) * 16]
            .try_into()
            .unwrap();
        // XOR each decrypted block with its predecessor's ciphertext,
        // walking backwards so `data` still holds the ciphertext needed.
        for j in (0..take).rev() {
            let blk = start + j;
            let mut prev = [0u8; 16];
            if j == 0 {
                prev.copy_from_slice(&carry);
            } else {
                prev.copy_from_slice(&data[(blk - 1) * 16..blk * 16]);
            }
            let out = &mut data[blk * 16..(blk + 1) * 16];
            for (k, o) in out.iter_mut().enumerate() {
                *o = buf[j * 16 + k] ^ prev[k];
            }
        }
        carry = next_carry;
        start += take;
    }
}

/// CBC-encrypts one contiguous chain in place. CBC encryption is serial
/// within a chain, so this runs one lane per pass — constant-time but slow;
/// the multi-chain entry points below are where the wide win lives, and the
/// T-table oracle remains selectable where whole-file serial CBC dominates.
pub fn cbc_encrypt(cipher: &Aes256Fix, iv: &Iv128, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(16),
        "CBC input must be block-aligned"
    );
    let rk = cipher.packed_enc_keys();
    let mut prev = *iv;
    let mut buf = [0u8; WIDE_BYTES];
    for chunk in data.chunks_exact_mut(16) {
        for (k, b) in buf[..16].iter_mut().enumerate() {
            *b = chunk[k] ^ prev[k];
        }
        encrypt_pass(&rk, &mut buf);
        chunk.copy_from_slice(&buf[..16]);
        prev.copy_from_slice(&buf[..16]);
    }
}

/// CBC-encrypts `keys.len()` equal-length chains laid out consecutively in
/// `data` — chain `i` under `keys[i]`, all sharing `iv`. This is the
/// convergent span write: chains are independent, so pass `t` encrypts
/// block `t` of up to 16 chains at once under per-lane round keys.
///
/// `chain_len` must be a multiple of 16 and `data.len()` must equal
/// `keys.len() * chain_len`.
pub fn cbc_encrypt_chains(keys: &[Key256], iv: &Iv128, data: &mut [u8], chain_len: usize) {
    assert!(chain_len.is_multiple_of(16), "chains must be block-aligned");
    assert_eq!(data.len(), keys.len() * chain_len, "span shape mismatch");
    let mut ciphers: [Aes256Fix; WIDE_BLOCKS] =
        core::array::from_fn(|_| Aes256Fix { enc_keys: [0; 60] });
    for (tile_idx, tile_keys) in keys.chunks(WIDE_BLOCKS).enumerate() {
        expand_lanes(tile_keys, &mut ciphers);
        let rk = packed_keys_lanes(&ciphers[..tile_keys.len()]);
        let tile_off = tile_idx * WIDE_BLOCKS * chain_len;
        cbc_encrypt_tile(&rk, &[*iv], data, tile_off, tile_keys.len(), chain_len);
    }
}

/// CBC-encrypts up to 16 chains of a tile: `ivs` holds either one shared
/// IV or one IV per chain.
#[inline(never)]
fn cbc_encrypt_tile(
    rk: &PackedKeys,
    ivs: &[Iv128],
    data: &mut [u8],
    tile_off: usize,
    nchains: usize,
    chain_len: usize,
) {
    let mut buf = [0u8; WIDE_BYTES];
    let nblocks = chain_len / 16;
    for t in 0..nblocks {
        for lane in 0..nchains {
            let off = tile_off + lane * chain_len + t * 16;
            let dst = &mut buf[lane * 16..(lane + 1) * 16];
            dst.copy_from_slice(&data[off..off + 16]);
            if t == 0 {
                let iv = &ivs[lane % ivs.len()];
                for (k, b) in dst.iter_mut().enumerate() {
                    *b ^= iv[k];
                }
            } else {
                let prev = off - 16;
                for k in 0..16 {
                    buf[lane * 16 + k] ^= data[prev + k];
                }
            }
        }
        encrypt_pass(rk, &mut buf);
        for lane in 0..nchains {
            let off = tile_off + lane * chain_len + t * 16;
            data[off..off + 16].copy_from_slice(&buf[lane * 16..(lane + 1) * 16]);
        }
    }
}

/// CBC-decrypts `keys.len()` consecutive equal-length chains, chain `i`
/// under `keys[i]`, all sharing `iv`. Each chain's schedule is expanded
/// once and broadcast, then the chain decrypts 16 blocks per pass.
pub fn cbc_decrypt_chains(keys: &[Key256], iv: &Iv128, data: &mut [u8], chain_len: usize) {
    assert!(chain_len.is_multiple_of(16), "chains must be block-aligned");
    assert_eq!(data.len(), keys.len() * chain_len, "span shape mismatch");
    let mut ciphers: [Aes256Fix; WIDE_BLOCKS] =
        core::array::from_fn(|_| Aes256Fix { enc_keys: [0; 60] });
    for (tile_idx, tile_keys) in keys.chunks(WIDE_BLOCKS).enumerate() {
        expand_lanes(tile_keys, &mut ciphers);
        for (i, cipher) in ciphers[..tile_keys.len()].iter().enumerate() {
            let chain = (tile_idx * WIDE_BLOCKS + i) * chain_len;
            let rk = cipher.packed_dec_keys();
            cbc_decrypt_run(&rk, iv, &mut data[chain..chain + chain_len]);
        }
    }
}

/// CBC-encrypts consecutive chains under one shared cipher with per-chain
/// IVs (the volume-key shims): one broadcast schedule, chains in parallel.
pub fn cbc_encrypt_chains_shared(
    cipher: &Aes256Fix,
    ivs: &[Iv128],
    data: &mut [u8],
    chain_len: usize,
) {
    assert!(chain_len.is_multiple_of(16), "chains must be block-aligned");
    assert_eq!(data.len(), ivs.len() * chain_len, "span shape mismatch");
    let rk = cipher.packed_enc_keys();
    for (tile_idx, tile_ivs) in ivs.chunks(WIDE_BLOCKS).enumerate() {
        let tile_off = tile_idx * WIDE_BLOCKS * chain_len;
        cbc_encrypt_tile(&rk, tile_ivs, data, tile_off, tile_ivs.len(), chain_len);
    }
}

/// CBC-decrypts consecutive chains under one shared cipher with per-chain
/// IVs: one broadcast schedule, each chain wide within itself.
pub fn cbc_decrypt_chains_shared(
    cipher: &Aes256Fix,
    ivs: &[Iv128],
    data: &mut [u8],
    chain_len: usize,
) {
    assert!(chain_len.is_multiple_of(16), "chains must be block-aligned");
    assert_eq!(data.len(), ivs.len() * chain_len, "span shape mismatch");
    let rk = cipher.packed_dec_keys();
    for (i, iv) in ivs.iter().enumerate() {
        cbc_decrypt_run(&rk, iv, &mut data[i * chain_len..(i + 1) * chain_len]);
    }
}

/// XORs the GCM-style CTR keystream (counter blocks are public) into
/// `data`, 16 counter blocks per pass; the final partial block of
/// keystream is truncated. Wide form of [`crate::ctr::ctr32_xor_in_place`].
pub fn ctr32_xor(cipher: &Aes256Fix, j: &[u8; 16], data: &mut [u8]) {
    let rk = cipher.packed_enc_keys();
    let mut counter = *j;
    let mut buf = [0u8; WIDE_BYTES];
    for chunk in data.chunks_mut(WIDE_BYTES) {
        for blk in 0..WIDE_BLOCKS.min(chunk.len().div_ceil(16)) {
            buf[blk * 16..(blk + 1) * 16].copy_from_slice(&counter);
            crate::ctr::inc32(&mut counter);
        }
        encrypt_pass(&rk, &mut buf);
        for (k, byte) in chunk.iter_mut().enumerate() {
            *byte ^= buf[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes256;

    /// Scalar S-box evaluation through the bitsliced circuit, one byte in
    /// lane 0 bit 0 of each plane.
    fn circuit_sbox_byte(x: u8) -> u8 {
        let mut p = [W::ZERO; 8];
        for (i, plane) in p.iter_mut().enumerate() {
            plane.0[0] = ((x >> i) & 1) as u64;
        }
        sub_bytes(&mut p);
        let mut out = 0u8;
        for (i, plane) in p.iter().enumerate() {
            out |= ((plane.0[0] & 1) as u8) << i;
        }
        out
    }

    fn circuit_inv_sbox_byte(x: u8) -> u8 {
        let mut p = [W::ZERO; 8];
        for (i, plane) in p.iter_mut().enumerate() {
            plane.0[0] = ((x >> i) & 1) as u64;
        }
        inv_sub_bytes(&mut p);
        let mut out = 0u8;
        for (i, plane) in p.iter().enumerate() {
            out |= ((plane.0[0] & 1) as u8) << i;
        }
        out
    }

    /// The FIPS-197 S-box, reproduced independently of `crate::aes` (whose
    /// table is private) so the circuit is checked against the standard.
    fn reference_sbox() -> [u8; 256] {
        // S(x) = affine(x^254): build from GF(2^8) inversion + affine map.
        fn gmul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            for _ in 0..8 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80;
                a <<= 1;
                if hi != 0 {
                    a ^= 0x1b;
                }
                b >>= 1;
            }
            p
        }
        let mut sbox = [0u8; 256];
        for (x, slot) in sbox.iter_mut().enumerate() {
            // x^254 by square-and-multiply.
            let b = x as u8;
            let mut inv = 1u8;
            // 254 = 0b11111110.
            for bit in (0..8).rev() {
                inv = gmul(inv, inv);
                if (254 >> bit) & 1 == 1 {
                    inv = gmul(inv, b);
                }
            }
            let mut out = 0u8;
            for i in 0..8 {
                let bit = ((inv >> i)
                    ^ (inv >> ((i + 4) % 8))
                    ^ (inv >> ((i + 5) % 8))
                    ^ (inv >> ((i + 6) % 8))
                    ^ (inv >> ((i + 7) % 8))
                    ^ (0x63 >> i))
                    & 1;
                out |= bit << i;
            }
            *slot = out;
        }
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        sbox
    }

    #[test]
    fn sbox_circuit_matches_fips_exhaustively() {
        let sbox = reference_sbox();
        for (x, &sx) in sbox.iter().enumerate() {
            assert_eq!(
                circuit_sbox_byte(x as u8),
                sx,
                "S-box circuit wrong at {x:#04x}"
            );
        }
    }

    #[test]
    fn inv_sbox_circuit_inverts_exhaustively() {
        let sbox = reference_sbox();
        for (x, &sx) in sbox.iter().enumerate() {
            assert_eq!(
                circuit_inv_sbox_byte(sx),
                x as u8,
                "inverse S-box wrong at S({x:#04x})"
            );
        }
    }

    #[test]
    fn pack_matches_naive_reference_and_round_trips() {
        let mut bytes = [0u8; WIDE_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let planes = pack(&bytes);
        // Naive reference: plane p, lane `col`, bit (row*16 + blk) =
        // bit p of byte (row + 4*col) of block blk.
        let mut expect = [W::ZERO; 8];
        for blk in 0..WIDE_BLOCKS {
            for i in 0..16 {
                let byte = bytes[blk * 16 + i];
                let (row, col) = (i % 4, i / 4);
                let pos = row * 16 + blk;
                for (p, plane) in expect.iter_mut().enumerate() {
                    plane.0[col] |= (((byte >> p) & 1) as u64) << pos;
                }
            }
        }
        assert_eq!(planes, expect, "pack layout mismatch");
        let mut back = [0u8; WIDE_BYTES];
        unpack(&planes, &mut back);
        assert_eq!(back, bytes, "unpack must invert pack");
    }

    /// Each bitsliced layer against the scalar definition, via single-block
    /// round-trips of (layer ∘ inverse-layer).
    #[test]
    fn linear_layers_invert() {
        let mut bytes = [0u8; WIDE_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(73).wrapping_add(5);
        }
        let orig = bytes;
        let mut p = pack(&bytes);
        shift_rows(&mut p);
        inv_shift_rows(&mut p);
        unpack(&p, &mut bytes);
        assert_eq!(bytes, orig, "ShiftRows must invert");
        let mut p = pack(&bytes);
        mix_columns_cycled::<0, 0>(&mut p);
        inv_mix_columns_cycled::<0, 0>(&mut p);
        unpack(&p, &mut bytes);
        assert_eq!(bytes, orig, "MixColumns must invert");
    }

    /// ShiftRows against the FIPS definition on one handmade block.
    #[test]
    fn shift_rows_matches_scalar() {
        // Block laid out so byte (row, col) = row*4 + col + 1.
        let mut bytes = [0u8; WIDE_BYTES];
        for col in 0..4 {
            for row in 0..4 {
                bytes[4 * col + row] = (row * 4 + col + 1) as u8;
            }
        }
        let mut p = pack(&bytes);
        shift_rows(&mut p);
        let mut out = [0u8; WIDE_BYTES];
        unpack(&p, &mut out);
        // Row r shifts left by r: new (r, c) = old (r, (c + r) % 4).
        for col in 0..4 {
            for row in 0..4 {
                let expect = (row * 4 + (col + row) % 4 + 1) as u8;
                assert_eq!(out[4 * col + row], expect, "row {row} col {col}");
            }
        }
    }

    #[test]
    fn fips197_appendix_c3_vector() {
        let key: Key256 = core::array::from_fn(|i| i as u8);
        let fix = Aes256Fix::new(&key);
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let ct: [u8; 16] = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        assert_eq!(fix.encrypt_block(&pt), ct);
        assert_eq!(fix.decrypt_block(&ct), pt);
    }

    #[test]
    fn matches_ttable_cipher_on_many_keys_and_blocks() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 24) as u8
        };
        for _ in 0..16 {
            let key: Key256 = core::array::from_fn(|_| next());
            let fix = Aes256Fix::new(&key);
            let tt = Aes256::new(&key);
            for _ in 0..4 {
                let block: [u8; 16] = core::array::from_fn(|_| next());
                let ct = tt.encrypt_block(&block);
                assert_eq!(fix.encrypt_block(&block), ct, "encrypt parity");
                assert_eq!(fix.decrypt_block(&ct), block, "decrypt parity");
            }
        }
    }

    fn prng(seed: &mut u64) -> u8 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*seed >> 24) as u8
    }

    #[test]
    fn ecb_matches_ttable_over_runs_with_tails() {
        let key = [0x17u8; 32];
        let fix = Aes256Fix::new(&key);
        let tt = Aes256::new(&key);
        for nblocks in [1usize, 4, 15, 16, 17, 33, 64] {
            let mut seed = nblocks as u64;
            let mut data: Vec<u8> = (0..nblocks * 16).map(|_| prng(&mut seed)).collect();
            let mut oracle = data.clone();
            ecb_encrypt(&fix, &mut data);
            crate::aes::ecb_encrypt_in_place(&tt, &mut oracle);
            assert_eq!(data, oracle, "ECB parity at {nblocks} blocks");
            ecb_decrypt(&fix, &mut data);
            crate::aes::ecb_decrypt_in_place(&tt, &mut oracle);
            assert_eq!(data, oracle, "ECB decrypt parity at {nblocks} blocks");
        }
    }

    #[test]
    fn cbc_single_chain_matches_ttable() {
        let key = [0x29u8; 32];
        let fix = Aes256Fix::new(&key);
        let tt = Aes256::new(&key);
        let iv = [0xa5u8; 16];
        for nblocks in [1usize, 7, 16, 40, 256] {
            let mut seed = 77 + nblocks as u64;
            let pt: Vec<u8> = (0..nblocks * 16).map(|_| prng(&mut seed)).collect();
            let mut data = pt.clone();
            let mut oracle = pt.clone();
            cbc_encrypt(&fix, &iv, &mut data);
            crate::cbc::encrypt_in_place(&tt, &iv, &mut oracle).unwrap();
            assert_eq!(data, oracle, "CBC encrypt parity at {nblocks} blocks");
            cbc_decrypt(&fix, &iv, &mut data);
            assert_eq!(data, pt, "CBC decrypt round trip at {nblocks} blocks");
        }
    }

    #[test]
    fn cbc_chains_match_per_chain_ttable() {
        let chain_len = 768; // 48 AES blocks per chain: three wide passes
        for nchains in [1usize, 3, 16, 21] {
            let mut seed = 5 + nchains as u64;
            let keys: Vec<Key256> = (0..nchains)
                .map(|_| core::array::from_fn(|_| prng(&mut seed)))
                .collect();
            let pt: Vec<u8> = (0..nchains * chain_len).map(|_| prng(&mut seed)).collect();
            let iv = [0x3cu8; 16];
            let mut data = pt.clone();
            cbc_encrypt_chains(&keys, &iv, &mut data, chain_len);
            let mut oracle = pt.clone();
            for (i, key) in keys.iter().enumerate() {
                let tt = Aes256::new(key);
                crate::cbc::encrypt_in_place(
                    &tt,
                    &iv,
                    &mut oracle[i * chain_len..(i + 1) * chain_len],
                )
                .unwrap();
            }
            assert_eq!(data, oracle, "chain encrypt parity at {nchains} chains");
            cbc_decrypt_chains(&keys, &iv, &mut data, chain_len);
            assert_eq!(data, pt, "chain decrypt round trip at {nchains} chains");
        }
    }

    #[test]
    fn shared_cipher_chains_match_ttable() {
        let chain_len = 128;
        let key = [0x61u8; 32];
        let fix = Aes256Fix::new(&key);
        let tt = Aes256::new(&key);
        for nchains in [2usize, 16, 19] {
            let mut seed = 100 + nchains as u64;
            let ivs: Vec<Iv128> = (0..nchains)
                .map(|_| core::array::from_fn(|_| prng(&mut seed)))
                .collect();
            let pt: Vec<u8> = (0..nchains * chain_len).map(|_| prng(&mut seed)).collect();
            let mut data = pt.clone();
            cbc_encrypt_chains_shared(&fix, &ivs, &mut data, chain_len);
            let mut oracle = pt.clone();
            for (i, iv) in ivs.iter().enumerate() {
                crate::cbc::encrypt_in_place(
                    &tt,
                    iv,
                    &mut oracle[i * chain_len..(i + 1) * chain_len],
                )
                .unwrap();
            }
            assert_eq!(data, oracle, "shared-cipher encrypt parity");
            cbc_decrypt_chains_shared(&fix, &ivs, &mut data, chain_len);
            assert_eq!(data, pt, "shared-cipher decrypt round trip");
        }
    }

    #[test]
    fn ctr_matches_scalar_including_partial_tail() {
        let key = [0x88u8; 32];
        let fix = Aes256Fix::new(&key);
        let tt = Aes256::new(&key);
        for len in [1usize, 16, 100, 256, 300, 4096] {
            let mut seed = len as u64;
            let pt: Vec<u8> = (0..len).map(|_| prng(&mut seed)).collect();
            let j = [0x0fu8; 16];
            let mut data = pt.clone();
            ctr32_xor(&fix, &j, &mut data);
            let mut oracle = pt.clone();
            crate::ctr::ctr32_xor_in_place(&tt, &j, &mut oracle);
            assert_eq!(data, oracle, "CTR parity at {len} bytes");
        }
    }

    #[test]
    fn wide_pass_encrypts_all_sixteen_lanes() {
        let key = [0x42u8; 32];
        let fix = Aes256Fix::new(&key);
        let tt = Aes256::new(&key);
        let mut bytes = [0u8; WIDE_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let orig = bytes;
        let rk = fix.packed_enc_keys();
        let mut p = pack(&bytes);
        encrypt_planes(&rk, &mut p);
        unpack(&p, &mut bytes);
        for blk in 0..WIDE_BLOCKS {
            let chunk: [u8; 16] = orig[blk * 16..blk * 16 + 16].try_into().unwrap();
            assert_eq!(
                &bytes[blk * 16..blk * 16 + 16],
                &tt.encrypt_block(&chunk),
                "lane {blk} disagrees with the T-table oracle"
            );
        }
        let mut p = pack(&bytes.clone());
        decrypt_planes(&fix.packed_dec_keys(), &mut p);
        unpack(&p, &mut bytes);
        assert_eq!(bytes, orig, "wide decrypt must invert wide encrypt");
    }

    fn unhex<const N: usize>(s: &str) -> [u8; N] {
        let mut out = [0u8; N];
        assert_eq!(s.len(), N * 2);
        for (i, b) in out.iter_mut().enumerate() {
            *b = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    /// NIST CAVP AES-256 known-answer tests (ECBGFSbox256, ECBKeySbox256,
    /// ECBVarKey256 and ECBVarTxt256, count 0 each plus extra GFSbox
    /// counts), run through both the single-block API and a full 16-lane
    /// wide pass so the packed data path itself is validated against the
    /// published ciphertexts.
    #[test]
    fn nist_cavp_kat_vectors() {
        let zero_key = "0000000000000000000000000000000000000000000000000000000000000000";
        // (key, plaintext, ciphertext)
        let vectors: &[(&str, &str, &str)] = &[
            // ECBGFSbox256.rsp, counts 0-4
            (
                zero_key,
                "014730f80ac625fe84f026c60bfd547d",
                "5c9d844ed46f9885085e5d6a4f94c7d7",
            ),
            (
                zero_key,
                "0b24af36193ce4665f2825d7b4749c98",
                "a9ff75bd7cf6613d3731c77c3b6d0c04",
            ),
            (
                zero_key,
                "761c1fe41a18acf20d241650611d90f1",
                "623a52fcea5d443e48d9181ab32c7421",
            ),
            (
                zero_key,
                "8a560769d605868ad80d819bdba03771",
                "38f2c7ae10612415d27ca190d27da8b4",
            ),
            (
                zero_key,
                "91fbef2d15a97816060bee1feaa49afe",
                "1bc704f1bce135ceb810341b216d7abe",
            ),
            // ECBKeySbox256.rsp, counts 0-1
            (
                "c47b0294dbbbee0fec4757f22ffeee3587ca4730c3d33b691df38bab076bc558",
                "00000000000000000000000000000000",
                "46f2fb342d6f0ab477476fc501242c5f",
            ),
            (
                "28d46cffa158533194214a91e712fc2b45b518076675affd910edeca5f41ac64",
                "00000000000000000000000000000000",
                "4bf3b0a69aeb6657794f2901b1440ad4",
            ),
            // ECBVarKey256.rsp, count 0
            (
                "8000000000000000000000000000000000000000000000000000000000000000",
                "00000000000000000000000000000000",
                "e35a6dcb19b201a01ebcfa8aa22b5759",
            ),
            // ECBVarTxt256.rsp, count 0
            (
                zero_key,
                "80000000000000000000000000000000",
                "ddc6bf790c15760d8d9aeb6f9a75fd4e",
            ),
        ];
        for (key_hex, pt_hex, ct_hex) in vectors {
            let key: Key256 = unhex(key_hex);
            let pt: [u8; 16] = unhex(pt_hex);
            let ct: [u8; 16] = unhex(ct_hex);
            let fix = Aes256Fix::new(&key);
            assert_eq!(fix.encrypt_block(&pt), ct, "KAT encrypt key={key_hex}");
            assert_eq!(fix.decrypt_block(&ct), pt, "KAT decrypt key={key_hex}");

            // The same vector replicated across all 16 lanes of a wide pass.
            let mut bytes = [0u8; WIDE_BYTES];
            for lane in bytes.chunks_exact_mut(16) {
                lane.copy_from_slice(&pt);
            }
            ecb_encrypt(&fix, &mut bytes);
            for (blk, lane) in bytes.chunks_exact(16).enumerate() {
                assert_eq!(lane, ct, "wide KAT lane {blk} key={key_hex}");
            }
            ecb_decrypt(&fix, &mut bytes);
            for (blk, lane) in bytes.chunks_exact(16).enumerate() {
                assert_eq!(lane, pt, "wide KAT decrypt lane {blk} key={key_hex}");
            }
        }
    }
}
