//! GHASH universal hash over GF(2^128), the authentication core of AES-GCM.
//!
//! Implemented with the straightforward bit-serial multiplication from
//! NIST SP 800-38D §6.3. Metadata blocks are a small fraction (≈ 1/119 at
//! R = 8) of all bytes Lamassu moves, so the simple implementation does not
//! distort the performance picture the paper paints.

/// The GHASH reduction constant R = 0xe1 || 0^120.
const R_HI: u64 = 0xe100_0000_0000_0000;

/// A 128-bit field element stored as two big-endian 64-bit halves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct Fe128 {
    hi: u64,
    lo: u64,
}

impl Fe128 {
    fn from_bytes(b: &[u8; 16]) -> Self {
        Fe128 {
            hi: u64::from_be_bytes(b[0..8].try_into().unwrap()),
            lo: u64::from_be_bytes(b[8..16].try_into().unwrap()),
        }
    }

    fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.hi.to_be_bytes());
        out[8..16].copy_from_slice(&self.lo.to_be_bytes());
        out
    }

    fn xor(self, other: Fe128) -> Fe128 {
        Fe128 {
            hi: self.hi ^ other.hi,
            lo: self.lo ^ other.lo,
        }
    }

    /// Tests bit `i` where bit 0 is the most significant bit of the block
    /// (the convention used by SP 800-38D).
    fn bit(self, i: usize) -> bool {
        if i < 64 {
            (self.hi >> (63 - i)) & 1 == 1
        } else {
            (self.lo >> (127 - i)) & 1 == 1
        }
    }

    /// Right-shift by one bit (towards the least significant bit in the
    /// SP 800-38D convention).
    fn shr1(self) -> Fe128 {
        Fe128 {
            hi: self.hi >> 1,
            lo: (self.lo >> 1) | (self.hi << 63),
        }
    }
}

/// Multiplies two field elements per SP 800-38D Algorithm 1.
fn gf_mul(x: Fe128, y: Fe128) -> Fe128 {
    let mut z = Fe128::default();
    let mut v = y;
    for i in 0..128 {
        if x.bit(i) {
            z = z.xor(v);
        }
        let lsb = v.lo & 1 == 1;
        v = v.shr1();
        if lsb {
            v.hi ^= R_HI;
        }
    }
    z
}

/// Incremental GHASH state keyed by the hash subkey `H = AES_K(0^128)`.
#[derive(Clone)]
pub struct Ghash {
    h: Fe128,
    y: Fe128,
}

impl Ghash {
    /// Creates a GHASH instance from the 16-byte hash subkey.
    pub fn new(h: &[u8; 16]) -> Self {
        Ghash {
            h: Fe128::from_bytes(h),
            y: Fe128::default(),
        }
    }

    /// Absorbs `data`, zero-padding the final partial block as GCM requires.
    pub fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.absorb_block(&block);
        }
    }

    /// Absorbs a single full 16-byte block.
    pub fn absorb_block(&mut self, block: &[u8; 16]) {
        self.y = gf_mul(self.y.xor(Fe128::from_bytes(block)), self.h);
    }

    /// Finishes GHASH over AAD of `aad_len` bytes and ciphertext of `ct_len`
    /// bytes by absorbing the standard length block, returning the digest.
    pub fn finalize(mut self, aad_len: usize, ct_len: usize) -> [u8; 16] {
        let mut len_block = [0u8; 16];
        len_block[0..8].copy_from_slice(&((aad_len as u64) * 8).to_be_bytes());
        len_block[8..16].copy_from_slice(&((ct_len as u64) * 8).to_be_bytes());
        self.absorb_block(&len_block);
        self.y.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::from_hex;

    #[test]
    fn gf_mul_identity() {
        // The multiplicative identity in the GCM representation is the block
        // 0x80 followed by zeros (bit 0 set).
        let mut one = [0u8; 16];
        one[0] = 0x80;
        let one = Fe128::from_bytes(&one);
        let x = Fe128::from_bytes(&[0x42u8; 16]);
        assert_eq!(gf_mul(x, one), x);
        assert_eq!(gf_mul(one, x), x);
    }

    #[test]
    fn gf_mul_zero_annihilates() {
        let x = Fe128::from_bytes(&[0x99u8; 16]);
        assert_eq!(gf_mul(x, Fe128::default()), Fe128::default());
    }

    #[test]
    fn gf_mul_commutative() {
        let a = Fe128::from_bytes(&[0x13u8; 16]);
        let b = Fe128 {
            hi: 0x0123_4567_89ab_cdef,
            lo: 0xfedc_ba98_7654_3210,
        };
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn ghash_test_case_2() {
        // GCM spec (McGrew & Viega) Test Case 2 intermediate GHASH value:
        // H = 66e94bd4ef8a2c3b884cfa59ca342b2e,
        // C = 0388dace60b6a392f328c2b971b2fe78, no AAD →
        // GHASH = f38cbb1ad69223dcc3457ae5b6b0f885.
        let h: [u8; 16] = from_hex("66e94bd4ef8a2c3b884cfa59ca342b2e")
            .unwrap()
            .try_into()
            .unwrap();
        let ct = from_hex("0388dace60b6a392f328c2b971b2fe78").unwrap();
        let mut g = Ghash::new(&h);
        g.update_padded(&ct);
        let tag = g.finalize(0, ct.len());
        assert_eq!(
            tag.to_vec(),
            from_hex("f38cbb1ad69223dcc3457ae5b6b0f885").unwrap()
        );
    }

    #[test]
    fn padding_of_partial_blocks() {
        let h = [0x5au8; 16];
        // Explicit zero padding must equal update_padded of the short input.
        let mut a = Ghash::new(&h);
        a.update_padded(&[1, 2, 3]);
        let mut b = Ghash::new(&h);
        let mut block = [0u8; 16];
        block[..3].copy_from_slice(&[1, 2, 3]);
        b.absorb_block(&block);
        assert_eq!(a.finalize(0, 3), b.finalize(0, 3));
    }
}
