//! GHASH universal hash over GF(2^128), the authentication core of AES-GCM.
//!
//! Two implementations live here:
//!
//! * [`Ghash`], the production path, multiplies with **Shoup's 4-bit
//!   table-driven method**: a 16-entry table of nibble multiples of the hash
//!   subkey `H` is precomputed once per key ([`GhashKey`], built when the
//!   [`Aes256Gcm`](crate::gcm::Aes256Gcm) instance is created), and each
//!   128-bit multiplication walks the operand through table lookups instead
//!   of 128 conditional shift/XOR rounds. The multiples table is kept at two
//!   alignments (low-nibble entries pre-shifted with their reduction folded
//!   in) so the inner loop consumes one *byte* per step with a 256-entry
//!   constant reduction table — the classic software GHASH refinement
//!   OpenSSL's gcm128 fallback calls `rem_8bit`, built on Shoup's "4-bit
//!   tables" from *On Fast and Provably Secure Message Authentication Based
//!   on Universal Hashing*. This is what keeps metadata sealing off the
//!   flame graph now that the data path batches everything else.
//! * [`GhashBitSerial`], the straightforward bit-serial multiplication from
//!   NIST SP 800-38D §6.3 Algorithm 1, kept as the verification oracle (the
//!   tests require both to agree on random inputs and on the GCM spec
//!   vectors) and as the baseline the `hot_path` bench measures the table
//!   method against (≥ 5x is asserted in release).
//!
//! Both operate on the SP 800-38D bit convention: bit 0 is the *most*
//! significant bit of the block, and the field is reduced by
//! `R = 0xe1 || 0^120`.

/// The GHASH reduction constant R = 0xe1 || 0^120.
const R_HI: u64 = 0xe100_0000_0000_0000;

/// Reduction table for the 4-bit method: entry `i` is `i · R` folded back
/// into the top of the accumulator when it is shifted right by one nibble
/// (the standard `last4` constants, pre-shifted to bit position 48 of the
/// high half).
const REDUCE4: [u64; 16] = [
    0x0000 << 48,
    0x1c20 << 48,
    0x3840 << 48,
    0x2460 << 48,
    0x7080 << 48,
    0x6ca0 << 48,
    0x48c0 << 48,
    0x54e0 << 48,
    0xe100 << 48,
    0xfd20 << 48,
    0xd940 << 48,
    0xc560 << 48,
    0x9180 << 48,
    0x8da0 << 48,
    0xa9c0 << 48,
    0xb5e0 << 48,
];

/// Byte-granular reduction: the fold-back for the 8 bits shifted out when
/// the accumulator moves one whole byte. `REDUCE4` is GF(2)-linear in its
/// index, so the 256 entries compose from two nibble entries at the right
/// alignments (OpenSSL calls its equivalent `rem_8bit`).
const fn build_reduce8() -> [u64; 256] {
    let mut t = [0u64; 256];
    let mut b = 0usize;
    while b < 256 {
        t[b] = (REDUCE4[b & 0x0f] >> 4) ^ REDUCE4[b >> 4];
        b += 1;
    }
    t
}
const REDUCE8: [u64; 256] = build_reduce8();

/// A 128-bit field element stored as two big-endian 64-bit halves.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct Fe128 {
    hi: u64,
    lo: u64,
}

impl Fe128 {
    fn from_bytes(b: &[u8; 16]) -> Self {
        Fe128 {
            hi: u64::from_be_bytes(b[0..8].try_into().unwrap()),
            lo: u64::from_be_bytes(b[8..16].try_into().unwrap()),
        }
    }

    fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.hi.to_be_bytes());
        out[8..16].copy_from_slice(&self.lo.to_be_bytes());
        out
    }

    fn xor(self, other: Fe128) -> Fe128 {
        Fe128 {
            hi: self.hi ^ other.hi,
            lo: self.lo ^ other.lo,
        }
    }

    /// Tests bit `i` where bit 0 is the most significant bit of the block
    /// (the convention used by SP 800-38D).
    fn bit(self, i: usize) -> bool {
        if i < 64 {
            (self.hi >> (63 - i)) & 1 == 1
        } else {
            (self.lo >> (127 - i)) & 1 == 1
        }
    }

    /// Right-shift by one bit (towards the least significant bit in the
    /// SP 800-38D convention).
    fn shr1(self) -> Fe128 {
        Fe128 {
            hi: self.hi >> 1,
            lo: (self.lo >> 1) | (self.hi << 63),
        }
    }
}

/// Multiplies two field elements per SP 800-38D Algorithm 1 (bit-serial).
fn gf_mul(x: Fe128, y: Fe128) -> Fe128 {
    let mut z = Fe128::default();
    let mut v = y;
    for i in 0..128 {
        if x.bit(i) {
            z = z.xor(v);
        }
        let lsb = v.lo & 1 == 1;
        v = v.shr1();
        if lsb {
            v.hi ^= R_HI;
        }
    }
    z
}

/// Precomputed per-key state for the 4-bit table-driven multiply: the 16
/// nibble multiples `i · H` for `i ∈ [0, 16)`, stored at two alignments so
/// the multiply can consume one *byte* of the operand per step (the low
/// nibble's multiple is pre-shifted by four bits with its reduction folded
/// in). 512 bytes per key, `Copy`; built once per GCM key and shared by
/// every metadata block sealed or unsealed under it.
#[derive(Clone, Copy)]
pub struct GhashKey {
    /// `i · H`, high/low halves (applied for a byte's high nibble).
    hh: [u64; 16],
    hl: [u64; 16],
    /// `i · H` shifted right one nibble with the shifted-out bits folded
    /// back (applied for a byte's low nibble).
    ahh: [u64; 16],
    ahl: [u64; 16],
}

impl GhashKey {
    /// Precomputes the nibble-multiple tables for the 16-byte hash subkey.
    pub fn new(h: &[u8; 16]) -> Self {
        let mut vh = u64::from_be_bytes(h[0..8].try_into().expect("8 bytes"));
        let mut vl = u64::from_be_bytes(h[8..16].try_into().expect("8 bytes"));
        let mut hh = [0u64; 16];
        let mut hl = [0u64; 16];
        // Entry 8 is H itself (nibble bit 3 = field "times 1" under the
        // reflected convention); 4, 2, 1 are successive halvings.
        hh[8] = vh;
        hl[8] = vl;
        let mut i = 4;
        while i > 0 {
            let lsb = vl & 1 == 1;
            vl = (vl >> 1) | (vh << 63);
            vh >>= 1;
            if lsb {
                vh ^= R_HI;
            }
            hh[i] = vh;
            hl[i] = vl;
            i >>= 1;
        }
        // Remaining entries by linearity: (i + j)·H = i·H ^ j·H.
        let mut i = 2;
        while i < 16 {
            for j in 1..i {
                hh[i + j] = hh[i] ^ hh[j];
                hl[i + j] = hl[i] ^ hl[j];
            }
            i *= 2;
        }
        // The shifted-alignment copies for low nibbles: one nibble-step of
        // the algorithm applied to each entry at build time instead of at
        // multiply time.
        let mut ahh = [0u64; 16];
        let mut ahl = [0u64; 16];
        for n in 0..16 {
            ahh[n] = (hh[n] >> 4) ^ REDUCE4[(hl[n] & 0x0f) as usize];
            ahl[n] = (hl[n] >> 4) | ((hh[n] & 0x0f) << 60);
        }
        GhashKey { hh, hl, ahh, ahl }
    }

    /// Multiplies `x` by the key's `H`, one operand byte per step: two
    /// nibble-table lookups (at their respective alignments) plus one
    /// byte-granular reduction fold. Algebraically identical to 16 pairs of
    /// Shoup 4-bit steps — the tests pin it to the bit-serial oracle.
    fn mul(&self, x: u128) -> u128 {
        let xh = (x >> 64) as u64;
        let xl = x as u64;
        let mut zh = 0u64;
        let mut zl = 0u64;
        macro_rules! byte_step {
            ($byte:expr) => {{
                let b = $byte as usize;
                let nlo = b & 0x0f;
                let nhi = b >> 4;
                let rem = (zl & 0xff) as usize;
                zl = ((zh << 56) | (zl >> 8)) ^ self.ahl[nlo] ^ self.hl[nhi];
                zh = (zh >> 8) ^ REDUCE8[rem] ^ self.ahh[nlo] ^ self.hh[nhi];
            }};
        }
        byte_step!(xl & 0xff);
        byte_step!((xl >> 8) & 0xff);
        byte_step!((xl >> 16) & 0xff);
        byte_step!((xl >> 24) & 0xff);
        byte_step!((xl >> 32) & 0xff);
        byte_step!((xl >> 40) & 0xff);
        byte_step!((xl >> 48) & 0xff);
        byte_step!(xl >> 56);
        byte_step!(xh & 0xff);
        byte_step!((xh >> 8) & 0xff);
        byte_step!((xh >> 16) & 0xff);
        byte_step!((xh >> 24) & 0xff);
        byte_step!((xh >> 32) & 0xff);
        byte_step!((xh >> 40) & 0xff);
        byte_step!((xh >> 48) & 0xff);
        byte_step!(xh >> 56);
        ((zh as u128) << 64) | (zl as u128)
    }
}

/// Incremental GHASH state, multiplying with the table-driven method.
#[derive(Clone)]
pub struct Ghash {
    key: GhashKey,
    y: u128,
}

impl Ghash {
    /// Creates a GHASH instance from the 16-byte hash subkey, building the
    /// nibble table. Prefer [`Ghash::with_key`] when the key is long-lived.
    pub fn new(h: &[u8; 16]) -> Self {
        Self::with_key(&GhashKey::new(h))
    }

    /// Creates a GHASH instance from a precomputed [`GhashKey`] (the per-key
    /// table is copied, not rebuilt).
    pub fn with_key(key: &GhashKey) -> Self {
        Ghash { key: *key, y: 0 }
    }

    /// Absorbs `data`, zero-padding the final partial block as GCM requires.
    pub fn update_padded(&mut self, data: &[u8]) {
        let mut whole = data.chunks_exact(16);
        for chunk in whole.by_ref() {
            let block = u128::from_be_bytes(chunk.try_into().expect("16-byte chunk"));
            self.y = self.key.mul(self.y ^ block);
        }
        let tail = whole.remainder();
        if !tail.is_empty() {
            let mut block = [0u8; 16];
            block[..tail.len()].copy_from_slice(tail);
            self.absorb_block(&block);
        }
    }

    /// Absorbs a single full 16-byte block.
    pub fn absorb_block(&mut self, block: &[u8; 16]) {
        self.y = self.key.mul(self.y ^ u128::from_be_bytes(*block));
    }

    /// Finishes GHASH over AAD of `aad_len` bytes and ciphertext of `ct_len`
    /// bytes by absorbing the standard length block, returning the digest.
    pub fn finalize(mut self, aad_len: usize, ct_len: usize) -> [u8; 16] {
        let len_block = (((aad_len as u128) * 8) << 64) | ((ct_len as u128) * 8);
        self.y = self.key.mul(self.y ^ len_block);
        self.y.to_be_bytes()
    }
}

/// The SP 800-38D §6.3 bit-serial GHASH, kept as the verification oracle and
/// the `hot_path` benchmark baseline. Same API as [`Ghash`].
#[derive(Clone)]
pub struct GhashBitSerial {
    h: Fe128,
    y: Fe128,
}

impl GhashBitSerial {
    /// Creates a bit-serial GHASH instance from the 16-byte hash subkey.
    pub fn new(h: &[u8; 16]) -> Self {
        GhashBitSerial {
            h: Fe128::from_bytes(h),
            y: Fe128::default(),
        }
    }

    /// Absorbs `data`, zero-padding the final partial block.
    pub fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.absorb_block(&block);
        }
    }

    /// Absorbs a single full 16-byte block.
    pub fn absorb_block(&mut self, block: &[u8; 16]) {
        self.y = gf_mul(self.y.xor(Fe128::from_bytes(block)), self.h);
    }

    /// Finishes over the standard length block, returning the digest.
    pub fn finalize(mut self, aad_len: usize, ct_len: usize) -> [u8; 16] {
        let mut len_block = [0u8; 16];
        len_block[0..8].copy_from_slice(&((aad_len as u64) * 8).to_be_bytes());
        len_block[8..16].copy_from_slice(&((ct_len as u64) * 8).to_be_bytes());
        self.absorb_block(&len_block);
        self.y.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::from_hex;

    #[test]
    fn gf_mul_identity() {
        // The multiplicative identity in the GCM representation is the block
        // 0x80 followed by zeros (bit 0 set).
        let mut one = [0u8; 16];
        one[0] = 0x80;
        let one = Fe128::from_bytes(&one);
        let x = Fe128::from_bytes(&[0x42u8; 16]);
        assert_eq!(gf_mul(x, one), x);
        assert_eq!(gf_mul(one, x), x);
    }

    #[test]
    fn gf_mul_zero_annihilates() {
        let x = Fe128::from_bytes(&[0x99u8; 16]);
        assert_eq!(gf_mul(x, Fe128::default()), Fe128::default());
    }

    #[test]
    fn gf_mul_commutative() {
        let a = Fe128::from_bytes(&[0x13u8; 16]);
        let b = Fe128 {
            hi: 0x0123_4567_89ab_cdef,
            lo: 0xfedc_ba98_7654_3210,
        };
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn table_mul_matches_bit_serial_on_pseudorandom_inputs() {
        // An LCG walk over key/operand space; the table method must agree
        // with the Algorithm 1 oracle everywhere.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..200 {
            let h = Fe128 {
                hi: next(),
                lo: next(),
            };
            let x = Fe128 {
                hi: next(),
                lo: next(),
            };
            let key = GhashKey::new(&h.to_bytes());
            let got = key.mul(u128::from_be_bytes(x.to_bytes()));
            let want = u128::from_be_bytes(gf_mul(x, h).to_bytes());
            assert_eq!(got, want, "h={h:?} x={x:?}");
        }
        // Degenerate operands.
        let key = GhashKey::new(&[0u8; 16]);
        assert_eq!(key.mul(u128::from_be_bytes([0xffu8; 16])), 0);
    }

    #[test]
    fn ghash_test_case_2() {
        // GCM spec (McGrew & Viega) Test Case 2 intermediate GHASH value:
        // H = 66e94bd4ef8a2c3b884cfa59ca342b2e,
        // C = 0388dace60b6a392f328c2b971b2fe78, no AAD →
        // GHASH = f38cbb1ad69223dcc3457ae5b6b0f885.
        let h: [u8; 16] = from_hex("66e94bd4ef8a2c3b884cfa59ca342b2e")
            .unwrap()
            .try_into()
            .unwrap();
        let ct = from_hex("0388dace60b6a392f328c2b971b2fe78").unwrap();
        let expected = from_hex("f38cbb1ad69223dcc3457ae5b6b0f885").unwrap();

        let mut g = Ghash::new(&h);
        g.update_padded(&ct);
        assert_eq!(g.finalize(0, ct.len()).to_vec(), expected);

        let mut g = GhashBitSerial::new(&h);
        g.update_padded(&ct);
        assert_eq!(g.finalize(0, ct.len()).to_vec(), expected);
    }

    #[test]
    fn streaming_equivalence_of_both_implementations() {
        let h = [0x3cu8; 16];
        let key = GhashKey::new(&h);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 253) as u8).collect();
        for (aad_len, ct_len) in [(0usize, 1000usize), (17, 983), (1000, 0), (3, 5)] {
            let mut a = Ghash::with_key(&key);
            a.update_padded(&data[..aad_len]);
            a.update_padded(&data[aad_len..aad_len + ct_len]);
            let mut b = GhashBitSerial::new(&h);
            b.update_padded(&data[..aad_len]);
            b.update_padded(&data[aad_len..aad_len + ct_len]);
            assert_eq!(
                a.finalize(aad_len, ct_len),
                b.finalize(aad_len, ct_len),
                "aad {aad_len} ct {ct_len}"
            );
        }
    }

    #[test]
    fn padding_of_partial_blocks() {
        let h = [0x5au8; 16];
        // Explicit zero padding must equal update_padded of the short input.
        let mut a = Ghash::new(&h);
        a.update_padded(&[1, 2, 3]);
        let mut b = Ghash::new(&h);
        let mut block = [0u8; 16];
        block[..3].copy_from_slice(&[1, 2, 3]);
        b.absorb_block(&block);
        assert_eq!(a.finalize(0, 3), b.finalize(0, 3));
    }
}
