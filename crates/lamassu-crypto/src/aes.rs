//! AES-256 block cipher (FIPS 197), implemented from scratch.
//!
//! Lamassu uses AES-256 in three places (paper §2.2):
//!
//! * CBC mode with a fixed IV for convergent data-block encryption,
//! * ECB as the key-derivation function that mixes the inner key into the
//!   block hash (Equation 1),
//! * GCM for the authenticated encryption of metadata blocks.
//!
//! This module provides the raw block cipher ([`Aes256`]); the modes live in
//! [`crate::cbc`], [`crate::ctr`] and [`crate::gcm`].
//!
//! The implementation is the classic 32-bit **T-table** formulation: the
//! SubBytes/ShiftRows/MixColumns round collapses into four 256-entry u32
//! table lookups per column, with the tables built at compile time from the
//! FIPS-197 S-boxes, and decryption running the equivalent inverse cipher
//! over InvMixColumns-transformed round keys. This is an order of magnitude
//! faster than a byte-oriented round (no per-byte GF(2^8) multiplication on
//! the data path), which matters because AES sits on the shim's per-block
//! hot path. It is validated against the FIPS-197 Appendix C.3 and NIST
//! SP 800-38A vectors.

use crate::Key256;

/// AES S-box (FIPS 197 §5.1.1).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// AES inverse S-box (FIPS 197 §5.3.2).
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants used by the key schedule.
const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// Number of rounds for AES-256.
const ROUNDS: usize = 14;
/// Number of 32-bit words in an AES-256 key.
const NK: usize = 8;

/// Multiplication by `x` (i.e. 2) in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let r = b << 1;
    if hi != 0 {
        r ^ 0x1b
    } else {
        r
    }
}

/// Multiplication of two elements of GF(2^8).
#[inline]
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Builds the four encryption T-tables at compile time: `TE[0][x]` packs one
/// column of SubBytes + MixColumns for input byte `x`, and `TE[k]` is
/// `TE[0]` rotated right by `8k` bits (the ShiftRows byte positions).
const fn build_te() -> [[u32; 256]; 4] {
    let mut te = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let w = ((gmul(s, 2) as u32) << 24)
            | ((s as u32) << 16)
            | ((s as u32) << 8)
            | (gmul(s, 3) as u32);
        te[0][i] = w;
        te[1][i] = w.rotate_right(8);
        te[2][i] = w.rotate_right(16);
        te[3][i] = w.rotate_right(24);
        i += 1;
    }
    te
}

/// Builds the four decryption T-tables (InvSubBytes + InvMixColumns).
const fn build_td() -> [[u32; 256]; 4] {
    let mut td = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let s = INV_SBOX[i];
        let w = ((gmul(s, 0x0e) as u32) << 24)
            | ((gmul(s, 0x09) as u32) << 16)
            | ((gmul(s, 0x0d) as u32) << 8)
            | (gmul(s, 0x0b) as u32);
        td[0][i] = w;
        td[1][i] = w.rotate_right(8);
        td[2][i] = w.rotate_right(16);
        td[3][i] = w.rotate_right(24);
        i += 1;
    }
    td
}

/// Encryption round tables (SubBytes ∘ ShiftRows ∘ MixColumns).
static TE: [[u32; 256]; 4] = build_te();
/// Decryption round tables (InvSubBytes ∘ InvShiftRows ∘ InvMixColumns).
static TD: [[u32; 256]; 4] = build_td();

/// An expanded AES-256 key ready for block encryption and decryption.
///
/// # Examples
///
/// ```
/// use lamassu_crypto::aes::Aes256;
///
/// let key = [0x42u8; 32];
/// let aes = Aes256::new(&key);
/// let pt = *b"sixteen byte msg";
/// let ct = aes.encrypt_block(&pt);
/// assert_eq!(aes.decrypt_block(&ct), pt);
/// ```
#[derive(Clone)]
pub struct Aes256 {
    /// Encryption round keys: (ROUNDS + 1) × 4 big-endian words.
    enc_keys: [u32; 4 * (ROUNDS + 1)],
    /// Equivalent-inverse-cipher round keys: the encryption schedule
    /// reversed, with InvMixColumns applied to the interior rounds so the
    /// decrypt rounds can use the [`TD`] tables directly.
    dec_keys: [u32; 4 * (ROUNDS + 1)],
}

impl Aes256 {
    /// Expands `key` into the round-key schedules.
    pub fn new(key: &Key256) -> Self {
        // The key schedule operates on 4-byte words: 60 words for AES-256.
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..NK {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        for i in NK..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                // RotWord + SubWord + Rcon.
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / NK - 1],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            } else if i % NK == 4 {
                // AES-256 applies SubWord every 4 words as well.
                temp = [
                    SBOX[temp[0] as usize],
                    SBOX[temp[1] as usize],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                ];
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }

        let mut enc_keys = [0u32; 4 * (ROUNDS + 1)];
        for (i, word) in w.iter().enumerate() {
            enc_keys[i] = u32::from_be_bytes(*word);
        }

        // Equivalent inverse cipher: reverse the rounds and push the
        // interior round keys through InvMixColumns (TD ∘ SBOX of each byte
        // computes exactly that on a word).
        let mut dec_keys = [0u32; 4 * (ROUNDS + 1)];
        for r in 0..=ROUNDS {
            for c in 0..4 {
                let word = enc_keys[4 * (ROUNDS - r) + c];
                dec_keys[4 * r + c] = if r == 0 || r == ROUNDS {
                    word
                } else {
                    TD[0][SBOX[(word >> 24) as usize] as usize]
                        ^ TD[1][SBOX[((word >> 16) & 0xff) as usize] as usize]
                        ^ TD[2][SBOX[((word >> 8) & 0xff) as usize] as usize]
                        ^ TD[3][SBOX[(word & 0xff) as usize] as usize]
                };
            }
        }
        Aes256 { enc_keys, dec_keys }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rk = &self.enc_keys;
        let mut s0 = get_u32(block, 0) ^ rk[0];
        let mut s1 = get_u32(block, 4) ^ rk[1];
        let mut s2 = get_u32(block, 8) ^ rk[2];
        let mut s3 = get_u32(block, 12) ^ rk[3];
        for r in 1..ROUNDS {
            let t0 = TE[0][(s0 >> 24) as usize]
                ^ TE[1][((s1 >> 16) & 0xff) as usize]
                ^ TE[2][((s2 >> 8) & 0xff) as usize]
                ^ TE[3][(s3 & 0xff) as usize]
                ^ rk[4 * r];
            let t1 = TE[0][(s1 >> 24) as usize]
                ^ TE[1][((s2 >> 16) & 0xff) as usize]
                ^ TE[2][((s3 >> 8) & 0xff) as usize]
                ^ TE[3][(s0 & 0xff) as usize]
                ^ rk[4 * r + 1];
            let t2 = TE[0][(s2 >> 24) as usize]
                ^ TE[1][((s3 >> 16) & 0xff) as usize]
                ^ TE[2][((s0 >> 8) & 0xff) as usize]
                ^ TE[3][(s1 & 0xff) as usize]
                ^ rk[4 * r + 2];
            let t3 = TE[0][(s3 >> 24) as usize]
                ^ TE[1][((s0 >> 16) & 0xff) as usize]
                ^ TE[2][((s1 >> 8) & 0xff) as usize]
                ^ TE[3][(s2 & 0xff) as usize]
                ^ rk[4 * r + 3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows only.
        let o0 = sub_word(s0, s1, s2, s3) ^ rk[4 * ROUNDS];
        let o1 = sub_word(s1, s2, s3, s0) ^ rk[4 * ROUNDS + 1];
        let o2 = sub_word(s2, s3, s0, s1) ^ rk[4 * ROUNDS + 2];
        let o3 = sub_word(s3, s0, s1, s2) ^ rk[4 * ROUNDS + 3];
        put_block(o0, o1, o2, o3)
    }

    /// Decrypts a single 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rk = &self.dec_keys;
        let mut s0 = get_u32(block, 0) ^ rk[0];
        let mut s1 = get_u32(block, 4) ^ rk[1];
        let mut s2 = get_u32(block, 8) ^ rk[2];
        let mut s3 = get_u32(block, 12) ^ rk[3];
        for r in 1..ROUNDS {
            let t0 = TD[0][(s0 >> 24) as usize]
                ^ TD[1][((s3 >> 16) & 0xff) as usize]
                ^ TD[2][((s2 >> 8) & 0xff) as usize]
                ^ TD[3][(s1 & 0xff) as usize]
                ^ rk[4 * r];
            let t1 = TD[0][(s1 >> 24) as usize]
                ^ TD[1][((s0 >> 16) & 0xff) as usize]
                ^ TD[2][((s3 >> 8) & 0xff) as usize]
                ^ TD[3][(s2 & 0xff) as usize]
                ^ rk[4 * r + 1];
            let t2 = TD[0][(s2 >> 24) as usize]
                ^ TD[1][((s1 >> 16) & 0xff) as usize]
                ^ TD[2][((s0 >> 8) & 0xff) as usize]
                ^ TD[3][(s3 & 0xff) as usize]
                ^ rk[4 * r + 2];
            let t3 = TD[0][(s3 >> 24) as usize]
                ^ TD[1][((s2 >> 16) & 0xff) as usize]
                ^ TD[2][((s1 >> 8) & 0xff) as usize]
                ^ TD[3][(s0 & 0xff) as usize]
                ^ rk[4 * r + 3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: InvSubBytes + InvShiftRows only.
        let o0 = inv_sub_word(s0, s3, s2, s1) ^ rk[4 * ROUNDS];
        let o1 = inv_sub_word(s1, s0, s3, s2) ^ rk[4 * ROUNDS + 1];
        let o2 = inv_sub_word(s2, s1, s0, s3) ^ rk[4 * ROUNDS + 2];
        let o3 = inv_sub_word(s3, s2, s1, s0) ^ rk[4 * ROUNDS + 3];
        put_block(o0, o1, o2, o3)
    }
}

#[inline]
fn get_u32(block: &[u8; 16], at: usize) -> u32 {
    u32::from_be_bytes([block[at], block[at + 1], block[at + 2], block[at + 3]])
}

#[inline]
fn put_block(o0: u32, o1: u32, o2: u32, o3: u32) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&o0.to_be_bytes());
    out[4..8].copy_from_slice(&o1.to_be_bytes());
    out[8..12].copy_from_slice(&o2.to_be_bytes());
    out[12..16].copy_from_slice(&o3.to_be_bytes());
    out
}

/// One word of the final encryption round: S-box substitution of the
/// ShiftRows-selected bytes `(a>>24, b>>16, c>>8, d)`.
#[inline]
fn sub_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((SBOX[(a >> 24) as usize] as u32) << 24)
        | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(d & 0xff) as usize] as u32)
}

/// One word of the final decryption round (inverse S-box).
#[inline]
fn inv_sub_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    ((INV_SBOX[(a >> 24) as usize] as u32) << 24)
        | ((INV_SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
        | ((INV_SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
        | (INV_SBOX[(d & 0xff) as usize] as u32)
}

/// Encrypts `data` in-place in ECB mode.
///
/// Lamassu's key-derivation function (Equation 1) is AES-256-ECB of the
/// 32-byte block hash under the inner key; ECB over two independent blocks is
/// exactly what is needed there. `data` must be a multiple of 16 bytes.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of 16.
pub fn ecb_encrypt_in_place(aes: &Aes256, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(16),
        "ECB input must be block-aligned"
    );
    for chunk in data.chunks_exact_mut(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        chunk.copy_from_slice(&aes.encrypt_block(&block));
    }
}

/// Decrypts `data` in-place in ECB mode (inverse of [`ecb_encrypt_in_place`]).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of 16.
pub fn ecb_decrypt_in_place(aes: &Aes256, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(16),
        "ECB input must be block-aligned"
    );
    for chunk in data.chunks_exact_mut(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        chunk.copy_from_slice(&aes.decrypt_block(&block));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::from_hex;

    fn key_from_hex(s: &str) -> Key256 {
        let v = from_hex(s).unwrap();
        let mut k = [0u8; 32];
        k.copy_from_slice(&v);
        k
    }

    fn block_from_hex(s: &str) -> [u8; 16] {
        let v = from_hex(s).unwrap();
        let mut b = [0u8; 16];
        b.copy_from_slice(&v);
        b
    }

    #[test]
    fn fips197_appendix_c3() {
        // FIPS 197, Appendix C.3 (AES-256).
        let key = key_from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let pt = block_from_hex("00112233445566778899aabbccddeeff");
        let expect = block_from_hex("8ea2b7ca516745bfeafc49904b496089");
        let aes = Aes256::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expect);
        assert_eq!(aes.decrypt_block(&expect), pt);
    }

    #[test]
    fn sp800_38a_ecb_vectors() {
        // NIST SP 800-38A, F.1.5 ECB-AES256.Encrypt.
        let key = key_from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let aes = Aes256::new(&key);
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "f3eed1bdb5d2a03c064b5a7e3db181f8",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "591ccb10d410ed26dc5ba74a31362870",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "b6ed21b99ca6f4f9f153e7b1beafed1d",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "23304b7a39f9f3ff067d8d8f9e24ecc7",
            ),
        ];
        for (pt_hex, ct_hex) in cases {
            let pt = block_from_hex(pt_hex);
            let ct = block_from_hex(ct_hex);
            assert_eq!(aes.encrypt_block(&pt), ct);
            assert_eq!(aes.decrypt_block(&ct), pt);
        }
    }

    #[test]
    fn ecb_round_trip_multi_block() {
        let key = [7u8; 32];
        let aes = Aes256::new(&key);
        let mut data: Vec<u8> = (0..256u32).map(|i| (i * 37 % 251) as u8).collect();
        let original = data.clone();
        ecb_encrypt_in_place(&aes, &mut data);
        assert_ne!(data, original);
        ecb_decrypt_in_place(&aes, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn ecb_rejects_unaligned() {
        let aes = Aes256::new(&[0u8; 32]);
        let mut data = vec![0u8; 17];
        ecb_encrypt_in_place(&aes, &mut data);
    }

    #[test]
    fn gmul_is_commutative_and_matches_xtime() {
        for a in 0..=255u8 {
            assert_eq!(gmul(a, 2), xtime(a));
            for b in [0u8, 1, 2, 3, 0x0e, 0x1b, 0x80, 0xff] {
                assert_eq!(gmul(a, b), gmul(b, a));
            }
        }
    }

    #[test]
    fn different_keys_different_ciphertext() {
        let pt = [0xabu8; 16];
        let a = Aes256::new(&[1u8; 32]);
        let b = Aes256::new(&[2u8; 32]);
        assert_ne!(a.encrypt_block(&pt), b.encrypt_block(&pt));
    }
}
