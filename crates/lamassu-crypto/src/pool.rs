//! A small scoped worker pool for batch cryptography.
//!
//! The paper's Figure 9 shows the convergent data path dominated by per-block
//! SHA-256 and AES. Those costs are embarrassingly parallel across the blocks
//! of a span — each block is hashed and encrypted independently — so the
//! [`batch`](crate::batch) APIs fan the work of one span out across a
//! [`CryptoPool`]. One pool is created per mounted shim and shared by every
//! file of the mount.
//!
//! The pool is *scoped*: workers are spawned with [`std::thread::scope`] for
//! the duration of one batch call, so they can borrow the caller's block
//! buffers directly (no channels, no `'static` bounds, no copies) and the
//! crate stays free of unsafe code. Batches below [`MIN_PARALLEL_ITEMS`]
//! items run inline on the caller's thread, so the single-block hot path
//! never pays a thread spawn.
//!
//! # Sizing
//!
//! [`CryptoPool::new`] takes a worker count; `0` selects the default of
//! `min(`[`DEFAULT_MAX_WORKERS`]`, available_parallelism)`. Crypto batches
//! are short (tens of microseconds per 4 KiB block with these table-based
//! implementations), so a small pool captures most of the win without
//! oversubscribing the machine — the CLI exposes the knob as `--workers`.

use std::num::NonZeroUsize;

/// Default upper bound on the worker count when auto-sizing (`workers == 0`).
pub const DEFAULT_MAX_WORKERS: usize = 4;

/// Batches smaller than this run inline: a thread spawn costs more than it
/// saves on one or two blocks.
pub const MIN_PARALLEL_ITEMS: usize = 4;

/// A fixed-width scoped worker pool (see the module docs).
///
/// # Examples
///
/// ```
/// use lamassu_crypto::pool::CryptoPool;
///
/// let pool = CryptoPool::new(0); // auto-sized
/// let mut items: Vec<u64> = (0..64).collect();
/// pool.for_each(&mut items, |x| *x *= 2);
/// assert_eq!(items[10], 20);
/// ```
#[derive(Debug, Clone)]
pub struct CryptoPool {
    workers: usize,
}

impl Default for CryptoPool {
    fn default() -> Self {
        CryptoPool::new(0)
    }
}

impl CryptoPool {
    /// Creates a pool of `workers` threads; `0` auto-sizes to
    /// `min(DEFAULT_MAX_WORKERS, available_parallelism)`.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
                .min(DEFAULT_MAX_WORKERS)
        } else {
            workers
        };
        CryptoPool {
            workers: workers.max(1),
        }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// How a batch of `items` items would be fanned out: `None` means it
    /// runs inline on the caller's thread (one worker, or a batch under
    /// [`MIN_PARALLEL_ITEMS`]), `Some(chunk)` means workers each take
    /// `chunk` consecutive items.
    pub fn chunking(&self, items: usize) -> Option<usize> {
        let threads = self.workers.min(items);
        if threads <= 1 || items < MIN_PARALLEL_ITEMS {
            None
        } else {
            Some(items.div_ceil(threads))
        }
    }

    /// True if a batch of `items` items runs inline on the caller's thread —
    /// the path that performs no allocation and no thread spawn (the
    /// zero-allocation guarantee of the steady-state data path is proven
    /// under this regime; see the crate-level docs of `lamassu-core::pool`).
    pub fn runs_inline(&self, items: usize) -> bool {
        self.chunking(items).is_none()
    }

    /// Applies `f` to every item, fanning contiguous chunks of `items` out
    /// across the pool's workers. Runs inline for one worker or for batches
    /// under [`MIN_PARALLEL_ITEMS`].
    pub fn for_each<T: Send>(&self, items: &mut [T], f: impl Fn(&mut T) + Sync) {
        match self.chunking(items.len()) {
            None => {
                for item in items {
                    f(item);
                }
            }
            Some(chunk) => std::thread::scope(|scope| {
                for slice in items.chunks_mut(chunk) {
                    scope.spawn(|| {
                        for item in slice {
                            f(item);
                        }
                    });
                }
            }),
        }
    }

    /// Applies `f` to every `(item, context)` pair, fanning contiguous
    /// chunks of both slices out in lockstep. The chunk iterators are lazy,
    /// so the inline path performs **zero allocations** — this is the
    /// primitive underneath every batch crypto API.
    ///
    /// Panics if the slices differ in length.
    pub fn zip_for_each<A: Send, B: Sync>(
        &self,
        items: &mut [A],
        ctx: &[B],
        f: impl Fn(&mut A, &B) + Sync,
    ) {
        assert_eq!(items.len(), ctx.len(), "zip_for_each slices must pair up");
        match self.chunking(items.len()) {
            None => {
                for (a, b) in items.iter_mut().zip(ctx) {
                    f(a, b);
                }
            }
            Some(chunk) => {
                let f = &f;
                std::thread::scope(|scope| {
                    for (ac, bc) in items.chunks_mut(chunk).zip(ctx.chunks(chunk)) {
                        scope.spawn(move || {
                            for (a, b) in ac.iter_mut().zip(bc) {
                                f(a, b);
                            }
                        });
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_sizing_is_bounded() {
        let pool = CryptoPool::new(0);
        assert!(pool.workers() >= 1);
        assert!(pool.workers() <= DEFAULT_MAX_WORKERS);
    }

    #[test]
    fn explicit_worker_count_is_respected() {
        assert_eq!(CryptoPool::new(3).workers(), 3);
        assert_eq!(CryptoPool::new(1).workers(), 1);
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let pool = CryptoPool::new(4);
        let mut items: Vec<u32> = vec![0; 1000];
        pool.for_each(&mut items, |x| *x += 1);
        assert!(items.iter().all(|&x| x == 1));
    }

    #[test]
    fn small_batches_run_inline() {
        let pool = CryptoPool::new(8);
        let mut items = [1u8, 2];
        // Would deadlock nothing either way; this just checks correctness on
        // the inline path.
        pool.for_each(&mut items, |x| *x += 10);
        assert_eq!(items, [11, 12]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = CryptoPool::new(2);
        let mut items: [u8; 0] = [];
        pool.for_each(&mut items, |_| unreachable!());
    }
}
