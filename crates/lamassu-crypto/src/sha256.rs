//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Lamassu hashes every 4 KiB plaintext data block with SHA-256 to obtain the
//! 32-byte value from which the convergent encryption key is derived
//! (Equation 1 of the paper), and re-hashes decrypted blocks on the read path
//! to perform the data-integrity self-check described in §2.5. That makes
//! this compression function the single hottest piece of CPU work in the
//! whole stack (the paper's Figure 9 attributes up to 80 % of RAM-disk read
//! latency to *GetCEKey*), so the implementation is tuned for it:
//!
//! * the 64 rounds are **fully unrolled** with the message schedule computed
//!   on the fly in a 16-word ring — no 64-entry `w` array, no second pass;
//! * [`Sha256::update`] feeds aligned input blocks straight to the
//!   compression function with **no staging copy** (the 64-byte buffer is
//!   only used for genuinely partial tails);
//! * [`digest_block`] is a one-shot path for whole-block inputs — exactly
//!   the 4 KiB data blocks the CE key derivation and the read self-check
//!   hash — that skips all streaming state and buffering.
//!
//! Validated against the FIPS 180-4 example vectors and the NIST
//! long-message vector in the module tests.

/// Initial hash values H(0) (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants K (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; 32];

/// SHA-256 compression of one 64-byte block into `state`.
///
/// Fully unrolled: rounds 0–15 consume the loaded message words, rounds
/// 16–63 extend the schedule in place in the 16-word ring `w`. The eight
/// working variables rotate by parameter position instead of being shuffled
/// through registers.
// The final eight schedule writes land after their last read — an artifact
// of the unrolled ring that the optimizer erases.
#[allow(unused_assignments)]
fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 16];
    for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
        *wi = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    // One round with the working variables in rotated positions.
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $t:expr, $wt:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ ((!$e) & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[$t])
                .wrapping_add($wt);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        }};
    }

    // Extends the message schedule in the ring and yields w[t].
    macro_rules! sched {
        ($t:expr) => {{
            let w15 = w[($t + 1) & 15];
            let w2 = w[($t + 14) & 15];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            let v = w[$t & 15]
                .wrapping_add(s0)
                .wrapping_add(w[($t + 9) & 15])
                .wrapping_add(s1);
            w[$t & 15] = v;
            v
        }};
    }

    // Eight rounds with the standard variable rotation; `$wt` selects
    // between the loaded words (rounds 0–15) and the extended schedule.
    macro_rules! rounds8 {
        ($base:expr, $wt:ident) => {{
            round!(a, b, c, d, e, f, g, h, $base, $wt!($base));
            round!(h, a, b, c, d, e, f, g, $base + 1, $wt!($base + 1));
            round!(g, h, a, b, c, d, e, f, $base + 2, $wt!($base + 2));
            round!(f, g, h, a, b, c, d, e, $base + 3, $wt!($base + 3));
            round!(e, f, g, h, a, b, c, d, $base + 4, $wt!($base + 4));
            round!(d, e, f, g, h, a, b, c, $base + 5, $wt!($base + 5));
            round!(c, d, e, f, g, h, a, b, $base + 6, $wt!($base + 6));
            round!(b, c, d, e, f, g, h, a, $base + 7, $wt!($base + 7));
        }};
    }
    macro_rules! loaded {
        ($t:expr) => {
            w[$t & 15]
        };
    }
    macro_rules! extended {
        ($t:expr) => {
            sched!($t)
        };
    }

    rounds8!(0, loaded);
    rounds8!(8, loaded);
    rounds8!(16, extended);
    rounds8!(24, extended);
    rounds8!(32, extended);
    rounds8!(40, extended);
    rounds8!(48, extended);
    rounds8!(56, extended);

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use lamassu_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize(),
///     lamassu_crypto::sha256::sha256(b"abc"),
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes processed so far.
    len: u64,
    /// Partially filled block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state. Whole 64-byte blocks compress
    /// straight from the input slice; only a partial tail is buffered.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially-buffered block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }

        // Process whole blocks directly from the input — no staging copy.
        let mut whole = input.chunks_exact(64);
        for block in whole.by_ref() {
            compress(&mut self.state, block);
        }

        // Buffer the tail.
        let tail = whole.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);

        // Append the 0x80 terminator and zero padding.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        self.update(&pad[..pad_len]);
        // Append the 64-bit big-endian message length.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-256 of a whole-block message: the fast path for the 4 KiB
/// data blocks the convergent-key derivation (Equation 1) and the §2.5 read
/// self-check hash. When `data.len()` is a multiple of 64 the message is
/// compressed straight off the slice and finished with a single stack-built
/// padding block — no streaming state, no buffering; other lengths fall back
/// to the streaming implementation.
///
/// # Examples
///
/// ```
/// use lamassu_crypto::sha256::{digest_block, sha256};
///
/// let block = vec![0x5au8; 4096];
/// assert_eq!(digest_block(&block), sha256(&block));
/// ```
pub fn digest_block(data: &[u8]) -> Digest {
    if !data.len().is_multiple_of(64) {
        let mut h = Sha256::new();
        h.update(data);
        return h.finalize();
    }
    let mut state = H0;
    for block in data.chunks_exact(64) {
        compress(&mut state, block);
    }
    // The message ended on a block boundary, so the padding is always one
    // full block: terminator, zeros, 64-bit length.
    let mut pad = [0u8; 64];
    pad[0] = 0x80;
    pad[56..64].copy_from_slice(&((data.len() as u64).wrapping_mul(8)).to_be_bytes());
    compress(&mut state, &pad);

    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One-shot SHA-256 of `data` (routes block-aligned messages through
/// [`digest_block`]).
///
/// # Examples
///
/// ```
/// let d = lamassu_crypto::sha256::sha256(b"");
/// assert_eq!(d[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    digest_block(data)
}

// ---------------------------------------------------------------------------
// Four-lane interleaved SHA-256.
// ---------------------------------------------------------------------------

/// Number of independent messages hashed per [`digest_blocks_x4`] pass.
pub const SHA_LANES: usize = 4;

/// A four-lane SHA-256 word: lane `i` holds the working state of message
/// `i`. Every operation is elementwise, so one compression pass carries
/// four independent message schedules — the four 32-bit lanes pack into a
/// single 128-bit vector register and the serial `t1`/`t2` dependency
/// chain that bounds scalar SHA-256 throughput is paid once for four
/// digests instead of once per digest.
#[derive(Clone, Copy)]
struct L([u32; SHA_LANES]);

impl L {
    const ZERO: L = L([0; SHA_LANES]);

    #[inline(always)]
    fn splat(v: u32) -> L {
        L([v; SHA_LANES])
    }

    #[inline(always)]
    fn add(self, o: L) -> L {
        L(std::array::from_fn(|i| self.0[i].wrapping_add(o.0[i])))
    }

    #[inline(always)]
    fn xor(self, o: L) -> L {
        L(std::array::from_fn(|i| self.0[i] ^ o.0[i]))
    }

    #[inline(always)]
    fn and(self, o: L) -> L {
        L(std::array::from_fn(|i| self.0[i] & o.0[i]))
    }

    #[inline(always)]
    fn andnot(self, o: L) -> L {
        L(std::array::from_fn(|i| !self.0[i] & o.0[i]))
    }

    #[inline(always)]
    fn rotr(self, n: u32) -> L {
        L(std::array::from_fn(|i| self.0[i].rotate_right(n)))
    }

    #[inline(always)]
    fn shr(self, n: u32) -> L {
        L(std::array::from_fn(|i| self.0[i] >> n))
    }
}

/// One four-lane compression: `blocks[i]` is the next 64-byte block of
/// message `i`, compressed into `states[i]`.
#[allow(unused_assignments)]
fn compress_x4(states: &mut [[u32; 8]; SHA_LANES], blocks: [&[u8]; SHA_LANES]) {
    let mut w = [L::ZERO; 16];
    for (t, wt) in w.iter_mut().enumerate() {
        *wt = L(std::array::from_fn(|i| {
            u32::from_be_bytes(blocks[i][t * 4..t * 4 + 4].try_into().expect("4-byte word"))
        }));
    }

    let mut v: [L; 8] = std::array::from_fn(|j| L(std::array::from_fn(|i| states[i][j])));
    let init = v;

    // One round with the classic rotating-index renaming: at round `t` the
    // working variable playing role `r` (0 = a .. 7 = h) lives at
    // `v[(r + 64 - t) & 7]`. Kept as a *rolled* loop on purpose: the small
    // body is a region the SLP vectorizer handles, so every `L` operation
    // becomes one 128-bit vector instruction instead of four scalar ones
    // (the fully-unrolled form scalarizes).
    #[inline(always)]
    fn round_t(v: &mut [L; 8], t: usize, wt: L) {
        let x = |r: usize| (r + 64 - t) & 7;
        let (a, b, c, d) = (v[x(0)], v[x(1)], v[x(2)], v[x(3)]);
        let (e, f, g, h) = (v[x(4)], v[x(5)], v[x(6)], v[x(7)]);
        let s1 = e.rotr(6).xor(e.rotr(11)).xor(e.rotr(25));
        let ch = e.and(f).xor(e.andnot(g));
        let t1 = h.add(s1).add(ch).add(L::splat(K[t])).add(wt);
        let s0 = a.rotr(2).xor(a.rotr(13)).xor(a.rotr(22));
        let maj = a.and(b).xor(a.and(c)).xor(b.and(c));
        v[x(3)] = d.add(t1);
        v[x(7)] = t1.add(s0.add(maj));
    }

    for (t, &wt) in w.iter().enumerate() {
        round_t(&mut v, t, wt);
    }
    for t in 16..64 {
        let w15 = w[(t + 1) & 15];
        let w2 = w[(t + 14) & 15];
        let s0 = w15.rotr(7).xor(w15.rotr(18)).xor(w15.shr(3));
        let s1 = w2.rotr(17).xor(w2.rotr(19)).xor(w2.shr(10));
        let wt = w[t & 15].add(s0).add(w[(t + 9) & 15]).add(s1);
        w[t & 15] = wt;
        round_t(&mut v, t, wt);
    }

    for (j, start) in init.iter().enumerate() {
        v[j] = v[j].add(*start);
    }
    for (i, state) in states.iter_mut().enumerate() {
        for (j, word) in state.iter_mut().enumerate() {
            *word = v[j].0[i];
        }
    }
}

/// Hashes four equal-length messages in one interleaved pass.
///
/// This is the wide kernel behind batched convergent key derivation
/// (`H(block)` over a span of data blocks) and the read-path integrity
/// self-check: the four message schedules run in lockstep, so the
/// compression's serial dependency chain is amortized fourfold. Returns
/// the four digests in input order; results are bit-identical to
/// [`sha256`] on each message.
///
/// # Panics
///
/// Panics if the four messages differ in length (lockstep lanes must pad
/// identically; the batch layer routes unequal tails to the scalar path).
///
/// # Examples
///
/// ```
/// use lamassu_crypto::sha256::{digest_blocks_x4, sha256};
///
/// let blocks = [&b"aaaa"[..], b"bbbb", b"cccc", b"dddd"];
/// let wide = digest_blocks_x4(blocks);
/// for (w, b) in wide.iter().zip(blocks) {
///     assert_eq!(*w, sha256(b));
/// }
/// ```
pub fn digest_blocks_x4(blocks: [&[u8]; SHA_LANES]) -> [Digest; SHA_LANES] {
    let len = blocks[0].len();
    assert!(
        blocks.iter().all(|b| b.len() == len),
        "digest_blocks_x4 requires equal-length messages"
    );

    let mut states = [H0; SHA_LANES];
    let whole = len / 64;
    for t in 0..whole {
        compress_x4(
            &mut states,
            std::array::from_fn(|i| &blocks[i][t * 64..(t + 1) * 64]),
        );
    }

    // All lanes share one padding layout: terminator after the common
    // tail, zeros, 64-bit bit length — one or two final blocks.
    let tail = len - whole * 64;
    let bits = (len as u64).wrapping_mul(8).to_be_bytes();
    let mut pads = [[0u8; 128]; SHA_LANES];
    for (i, pad) in pads.iter_mut().enumerate() {
        pad[..tail].copy_from_slice(&blocks[i][whole * 64..]);
        pad[tail] = 0x80;
    }
    let pad_blocks = if tail < 56 { 1 } else { 2 };
    for (i, pad) in pads.iter_mut().enumerate() {
        pad[pad_blocks * 64 - 8..pad_blocks * 64].copy_from_slice(&bits);
        let _ = i;
    }
    for t in 0..pad_blocks {
        compress_x4(
            &mut states,
            std::array::from_fn(|i| &pads[i][t * 64..(t + 1) * 64]),
        );
    }

    std::array::from_fn(|i| {
        let mut out = [0u8; 32];
        for (j, word) in states[i].iter().enumerate() {
            out[j * 4..j * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{from_hex, to_hex};

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_two_block() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            to_hex(&sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        for chunk_size in [1usize, 3, 63, 64, 65, 4096, 10_000] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn digest_block_matches_streaming_for_block_multiples() {
        let data: Vec<u8> = (0..16_384u32).map(|i| (i % 241) as u8).collect();
        for len in [0usize, 64, 128, 4096, 4096 * 2, 16_384, 100, 65, 4095] {
            let mut h = Sha256::new();
            h.update(&data[..len]);
            assert_eq!(digest_block(&data[..len]), h.finalize(), "len {len}");
        }
    }

    #[test]
    fn from_hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(from_hex(&to_hex(&d)).unwrap(), d.to_vec());
    }

    #[test]
    fn padding_boundaries() {
        // Lengths straddling the 55/56/63/64-byte padding boundaries.
        let expected = [
            (
                55usize,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                57,
                "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6",
            ),
            (
                63,
                "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
            (
                65,
                "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0",
            ),
        ];
        for (len, hex) in expected {
            let msg = vec![b'a'; len];
            assert_eq!(to_hex(&sha256(&msg)), hex, "length {len}");
        }
    }

    #[test]
    fn x4_nist_vectors() {
        // FIPS 180-4 example vectors, all four driven through one pass.
        let msgs: [&[u8]; SHA_LANES] = [b"abc", b"abc", b"abc", b"abc"];
        for d in digest_blocks_x4(msgs) {
            assert_eq!(
                to_hex(&d),
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
            );
        }
        let two = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        for d in digest_blocks_x4([two, two, two, two]) {
            assert_eq!(
                to_hex(&d),
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
            );
        }
    }

    #[test]
    fn x4_matches_scalar_at_padding_boundaries() {
        // Distinct lane contents across every padding regime: empty, short,
        // one-block tail (55/56/63/64), multi-block, and 4 KiB data blocks.
        for len in [0usize, 1, 31, 55, 56, 57, 63, 64, 65, 127, 128, 960, 4096] {
            let lanes: Vec<Vec<u8>> = (0..SHA_LANES)
                .map(|i| (0..len).map(|j| (i * 37 + j * 11 + 5) as u8).collect())
                .collect();
            let refs: [&[u8]; SHA_LANES] = std::array::from_fn(|i| lanes[i].as_slice());
            let wide = digest_blocks_x4(refs);
            for (i, d) in wide.iter().enumerate() {
                assert_eq!(*d, sha256(&lanes[i]), "lane {i} length {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn x4_rejects_unequal_lengths() {
        let _ = digest_blocks_x4([&b"aa"[..], b"aa", b"aa", b"a"]);
    }
}
