//! AES-256-CBC without padding, for full-block convergent data encryption.
//!
//! Lamassu encrypts each fixed-size data block (default 4096 bytes, always a
//! multiple of the AES block size) with AES-256 in CBC mode under the
//! block-specific convergent key and a *fixed* IV, so that identical
//! plaintext blocks encrypt to identical ciphertext blocks (paper §2.2,
//! Equation 2). Because every Lamassu write is a full block, no padding
//! scheme is needed; inputs must be 16-byte aligned.

use crate::aes::Aes256;
use crate::util::xor_in_place;
use crate::{CryptoError, Iv128, Result};

/// Encrypts `data` in place with AES-256-CBC.
///
/// Returns [`CryptoError::InvalidLength`] if `data` is not a multiple of 16
/// bytes.
///
/// # Examples
///
/// ```
/// use lamassu_crypto::{aes::Aes256, cbc, FIXED_IV};
///
/// let aes = Aes256::new(&[9u8; 32]);
/// let mut buf = vec![0u8; 64];
/// cbc::encrypt_in_place(&aes, &FIXED_IV, &mut buf).unwrap();
/// cbc::decrypt_in_place(&aes, &FIXED_IV, &mut buf).unwrap();
/// assert_eq!(buf, vec![0u8; 64]);
/// ```
pub fn encrypt_in_place(aes: &Aes256, iv: &Iv128, data: &mut [u8]) -> Result<()> {
    if !data.len().is_multiple_of(16) {
        return Err(CryptoError::InvalidLength {
            len: data.len(),
            expected_multiple_of: 16,
        });
    }
    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(16) {
        xor_in_place(chunk, &prev);
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        let ct = aes.encrypt_block(&block);
        chunk.copy_from_slice(&ct);
        prev = ct;
    }
    Ok(())
}

/// Decrypts `data` in place with AES-256-CBC (inverse of
/// [`encrypt_in_place`]).
///
/// Returns [`CryptoError::InvalidLength`] if `data` is not a multiple of 16
/// bytes.
pub fn decrypt_in_place(aes: &Aes256, iv: &Iv128, data: &mut [u8]) -> Result<()> {
    if !data.len().is_multiple_of(16) {
        return Err(CryptoError::InvalidLength {
            len: data.len(),
            expected_multiple_of: 16,
        });
    }
    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(16) {
        let mut ct = [0u8; 16];
        ct.copy_from_slice(chunk);
        let mut pt = aes.decrypt_block(&ct);
        xor_in_place(&mut pt, &prev);
        chunk.copy_from_slice(&pt);
        prev = ct;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::from_hex;
    use crate::FIXED_IV;

    fn key_from_hex(s: &str) -> [u8; 32] {
        let v = from_hex(s).unwrap();
        let mut k = [0u8; 32];
        k.copy_from_slice(&v);
        k
    }

    #[test]
    fn sp800_38a_cbc_aes256() {
        // NIST SP 800-38A, F.2.5 CBC-AES256.Encrypt.
        let key = key_from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let iv: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = from_hex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        )
        .unwrap();
        let expected_ct = from_hex(
            "f58c4c04d6e5f1ba779eabfb5f7bfbd6\
             9cfc4e967edb808d679f777bc6702c7d\
             39f23369a9d9bacfa530e26304231461\
             b2eb05e2c39be9fcda6c19078c6a9d1b",
        )
        .unwrap();

        let aes = Aes256::new(&key);
        let mut buf = pt.clone();
        encrypt_in_place(&aes, &iv, &mut buf).unwrap();
        assert_eq!(buf, expected_ct);
        decrypt_in_place(&aes, &iv, &mut buf).unwrap();
        assert_eq!(buf, pt);
    }

    #[test]
    fn fixed_iv_is_deterministic() {
        let aes = Aes256::new(&[3u8; 32]);
        let pt = vec![0x5au8; 4096];
        let mut a = pt.clone();
        let mut b = pt.clone();
        encrypt_in_place(&aes, &FIXED_IV, &mut a).unwrap();
        encrypt_in_place(&aes, &FIXED_IV, &mut b).unwrap();
        assert_eq!(a, b, "convergent CBC must be deterministic");
    }

    #[test]
    fn different_iv_different_ciphertext() {
        let aes = Aes256::new(&[3u8; 32]);
        let pt = vec![0x5au8; 64];
        let mut a = pt.clone();
        let mut b = pt.clone();
        encrypt_in_place(&aes, &[0u8; 16], &mut a).unwrap();
        encrypt_in_place(&aes, &[1u8; 16], &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_unaligned_input() {
        let aes = Aes256::new(&[0u8; 32]);
        let mut data = vec![0u8; 30];
        assert!(matches!(
            encrypt_in_place(&aes, &FIXED_IV, &mut data),
            Err(CryptoError::InvalidLength { len: 30, .. })
        ));
        assert!(decrypt_in_place(&aes, &FIXED_IV, &mut data).is_err());
    }

    #[test]
    fn round_trip_4k_block() {
        let aes = Aes256::new(&[0xaau8; 32]);
        let pt: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
        let mut buf = pt.clone();
        encrypt_in_place(&aes, &FIXED_IV, &mut buf).unwrap();
        assert_ne!(buf, pt);
        decrypt_in_place(&aes, &FIXED_IV, &mut buf).unwrap();
        assert_eq!(buf, pt);
    }
}
