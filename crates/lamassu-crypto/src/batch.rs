//! Batch (span-granular) cryptography over slices of blocks.
//!
//! The shims' span pipeline hands whole runs of blocks to the crypto layer at
//! once; the functions here fan that work out across a
//! [`CryptoPool`] so convergent hashing and AES for
//! a span run in parallel rather than serially per block:
//!
//! * [`derive_keys`] / [`derive_keys_into`] — Equation 1 for every block of
//!   a span;
//! * [`encrypt_blocks`] / [`decrypt_blocks`] — Equation 2 under per-block
//!   convergent keys and the shared [`FIXED_IV`](crate::FIXED_IV)
//!   (LamassuFS data blocks);
//! * [`encrypt_blocks_with`] / [`decrypt_blocks_with`] — one shared cipher
//!   with per-block IVs (the EncFS baseline's layout);
//! * [`cbc_decrypt_parallel`] — chunked CBC decryption of one large buffer
//!   (CBC decryption only needs the *previous ciphertext block*, so a long
//!   chain splits into independently decryptable chunks; used by the
//!   whole-file CeFileFS baseline).
//!
//! # The contiguous-span fast path
//!
//! The `*_span*` variants ([`derive_span_into`], [`encrypt_span`],
//! [`decrypt_span`], [`encrypt_span_with`], [`decrypt_span_with`]) operate
//! on one **contiguous** buffer of whole blocks instead of a slice of block
//! references. That shape is what the zero-allocation data path produces
//! (aligned reads land in one caller-buffer region; commits stage through
//! one reusable span buffer), and it frees the batch layer of work-vector
//! building: the **inline path performs no allocation at all** (lazy chunk
//! iterators), and the parallel path splits both the data and the key/IV
//! slices by arithmetic, paying only the `O(workers)` thread-scope fan-out
//! (which is why the zero-allocation guarantee is stated for the inline
//! regime — see [`CryptoPool::runs_inline`]). The reference-slice APIs
//! remain for heterogeneous batches and share the same property via
//! [`CryptoPool::zip_for_each`].
//!
//! Every function validates block alignment up front and then runs the
//! parallel section infallibly, so no error handling crosses threads.
//!
//! # Backend dispatch
//!
//! The span variants take a [`CryptoBackend`] and dispatch each contiguous
//! run to the wide fixsliced kernel or the T-table oracle:
//!
//! * **decryption** always goes wide under
//!   [`Fixsliced`](CryptoBackend::Fixsliced) — CBC decryption parallelizes
//!   *within* a chain, so even a single 4 KiB block fills the
//!   16-block slice;
//! * **encryption** is a strict chain per block, so the wide kernel
//!   interleaves whole chains and only wins once at least
//!   [`WIDE_MIN_BLOCKS`] chains share a pass; narrower runs fall back to
//!   the T-table path (and are counted as scalar dispatches in
//!   [`crate::stats`]);
//! * **key derivation** batches [`SHA_LANES`] blocks per multi-lane pass,
//!   deriving the tail through the constant-time scalar path.
//!
//! The reference-slice APIs ([`derive_keys`], [`encrypt_blocks`], ...)
//! intentionally stay on the T-table cipher: they are the per-block oracle
//! the differential property tests compare the wide kernels against.

use crate::aes::Aes256;
use crate::cbc;
use crate::fixsliced::{self, Aes256Fix};
use crate::kdf::ConvergentKdf;
use crate::pool::CryptoPool;
use crate::sha256::SHA_LANES;
use crate::{stats, CryptoBackend, CryptoError, Iv128, Key256, Result};

/// AES block size in bytes.
const AES_BLOCK: usize = 16;

/// Minimum number of CBC chains (file blocks) in a run before the wide
/// fixsliced kernel beats the T-table path on *encryption*.
///
/// A wide encrypt pass advances one AES block of up to
/// [`fixsliced::WIDE_BLOCKS`] independent chains, so its cost is flat in
/// the number of occupied lanes; measured on 4 KiB blocks, the crossover
/// where a partially-occupied pass beats per-chain T-table CBC sits at
/// eight chains. Decryption has no such threshold (it is wide within a
/// single chain).
pub const WIDE_MIN_BLOCKS: usize = 8;

/// A cipher pair for one key: the T-table schedule and the fixsliced
/// schedule, expanded once so the span layer can dispatch per run without
/// re-keying. Used by the shared-cipher span APIs ([`encrypt_span_with`],
/// [`decrypt_span_with`], [`cbc_decrypt_parallel`]).
#[derive(Clone)]
pub struct SpanCipher {
    tt: Aes256,
    fix: Aes256Fix,
}

impl SpanCipher {
    /// Expands both schedules for `key`.
    pub fn new(key: &Key256) -> Self {
        SpanCipher {
            tt: Aes256::new(key),
            fix: Aes256Fix::new(key),
        }
    }

    /// The T-table schedule (scalar oracle and per-block helpers).
    pub fn tt(&self) -> &Aes256 {
        &self.tt
    }

    /// The fixsliced constant-time schedule.
    pub fn fix(&self) -> &Aes256Fix {
        &self.fix
    }
}

fn check_aligned(blocks: &[&mut [u8]]) -> Result<()> {
    for block in blocks {
        if !block.len().is_multiple_of(AES_BLOCK) {
            return Err(CryptoError::InvalidLength {
                len: block.len(),
                expected_multiple_of: AES_BLOCK,
            });
        }
    }
    Ok(())
}

/// Validates that a contiguous span covers exactly `blocks` whole blocks of
/// `block_size` bytes, each AES-aligned.
fn check_span(data_len: usize, blocks: usize, block_size: usize) -> Result<()> {
    if !block_size.is_multiple_of(AES_BLOCK) || block_size == 0 {
        return Err(CryptoError::InvalidLength {
            len: block_size,
            expected_multiple_of: AES_BLOCK,
        });
    }
    if data_len != blocks * block_size {
        return Err(CryptoError::InvalidLength {
            len: data_len,
            expected_multiple_of: block_size,
        });
    }
    Ok(())
}

/// Derives the convergent key (Equation 1) for every block into
/// caller-provided storage, in parallel. Allocation-free.
///
/// Panics if `blocks` and `out` differ in length.
pub fn derive_keys_into(
    pool: &CryptoPool,
    kdf: &ConvergentKdf,
    blocks: &[&[u8]],
    out: &mut [Key256],
) {
    pool.zip_for_each(out, blocks, |key, block| *key = kdf.derive_for_block(block));
}

/// Derives the convergent key (Equation 1) for every block, in parallel.
pub fn derive_keys(pool: &CryptoPool, kdf: &ConvergentKdf, blocks: &[&[u8]]) -> Vec<Key256> {
    let mut keys = vec![[0u8; 32]; blocks.len()];
    derive_keys_into(pool, kdf, blocks, &mut keys);
    keys
}

/// Derives the convergent key for every `block_size`-byte block of one
/// contiguous span into caller-provided storage, in parallel.
/// Allocation-free on the inline path; the parallel path pays only the
/// `O(workers)` thread-scope fan-out (no work vectors).
///
/// Returns [`CryptoError::InvalidLength`] unless
/// `data.len() == out.len() * block_size`.
pub fn derive_span_into(
    pool: &CryptoPool,
    kdf: &ConvergentKdf,
    data: &[u8],
    block_size: usize,
    out: &mut [Key256],
    backend: CryptoBackend,
) -> Result<()> {
    if block_size == 0 || data.len() != out.len() * block_size {
        return Err(CryptoError::InvalidLength {
            len: data.len(),
            expected_multiple_of: block_size.max(1),
        });
    }
    let derive_run = |keys: &mut [Key256], span: &[u8]| match backend {
        CryptoBackend::TTable => {
            stats::count_scalar_derives(keys.len());
            for (key, block) in keys.iter_mut().zip(span.chunks_exact(block_size)) {
                *key = kdf.derive_for_block(block);
            }
        }
        CryptoBackend::Fixsliced => {
            stats::count_wide_derives(keys.len() / SHA_LANES * SHA_LANES);
            stats::count_scalar_derives(keys.len() % SHA_LANES);
            let mut blocks = span.chunks_exact(block_size);
            for group in keys.chunks_mut(SHA_LANES) {
                if group.len() == SHA_LANES {
                    let b: [&[u8]; SHA_LANES] =
                        std::array::from_fn(|_| blocks.next().expect("span length checked"));
                    group.copy_from_slice(&kdf.derive_x4(b));
                } else {
                    for key in group {
                        *key = kdf.derive_for_block_ct(blocks.next().expect("span length checked"));
                    }
                }
            }
        }
    };
    match pool.chunking(out.len()) {
        None => derive_run(out, data),
        Some(chunk) => std::thread::scope(|scope| {
            let derive_run = &derive_run;
            for (keys, span) in out.chunks_mut(chunk).zip(data.chunks(chunk * block_size)) {
                scope.spawn(move || derive_run(keys, span));
            }
        }),
    }
    Ok(())
}

/// Convergent encryption (Equation 2) of every block in place, each under its
/// own key and the shared fixed IV. `keys` and `blocks` must be parallel
/// slices of equal length.
pub fn encrypt_blocks(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(keys.len(), blocks.len(), "one key per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, keys, |block, key| {
        let cipher = Aes256::new(key);
        cbc::encrypt_in_place(&cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Decryption of every block in place, each under its own key and the shared
/// fixed IV (inverse of [`encrypt_blocks`]).
pub fn decrypt_blocks(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(keys.len(), blocks.len(), "one key per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, keys, |block, key| {
        let cipher = Aes256::new(key);
        cbc::decrypt_in_place(&cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Runs `f` over every `(block, context)` pair of one contiguous span —
/// inline or fanned out across the pool — without allocating.
fn span_for_each<B: Sync>(
    pool: &CryptoPool,
    data: &mut [u8],
    block_size: usize,
    ctx: &[B],
    f: impl Fn(&mut [u8], &B) + Sync,
) {
    match pool.chunking(ctx.len()) {
        None => {
            for (block, c) in data.chunks_exact_mut(block_size).zip(ctx) {
                f(block, c);
            }
        }
        Some(chunk) => {
            let f = &f;
            std::thread::scope(|scope| {
                for (span, cs) in data.chunks_mut(chunk * block_size).zip(ctx.chunks(chunk)) {
                    scope.spawn(move || {
                        for (block, c) in span.chunks_exact_mut(block_size).zip(cs) {
                            f(block, c);
                        }
                    });
                }
            })
        }
    }
}

/// Runs `f` over whole `(sub-span, context-chunk)` pairs of one contiguous
/// span — inline (the full span at once) or fanned out across the pool —
/// without allocating. The wide kernels consume whole runs, so they get the
/// run, not single blocks.
fn span_chunks<B: Sync>(
    pool: &CryptoPool,
    data: &mut [u8],
    block_size: usize,
    ctx: &[B],
    f: impl Fn(&mut [u8], &[B]) + Sync,
) {
    match pool.chunking(ctx.len()) {
        None => f(data, ctx),
        Some(chunk) => {
            let f = &f;
            std::thread::scope(|scope| {
                for (span, cs) in data.chunks_mut(chunk * block_size).zip(ctx.chunks(chunk)) {
                    scope.spawn(move || f(span, cs));
                }
            })
        }
    }
}

/// Convergent encryption (Equation 2) of one contiguous span of whole
/// blocks in place, each block under its own key and the shared fixed IV.
/// Allocation-free (the contiguous dual of [`encrypt_blocks`]).
///
/// Under [`CryptoBackend::Fixsliced`] the run is encrypted in groups of up
/// to [`fixsliced::WIDE_BLOCKS`] interleaved chains; groups narrower than
/// [`WIDE_MIN_BLOCKS`] fall back to the T-table path (below the wide
/// kernel's amortization width).
pub fn encrypt_span(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    data: &mut [u8],
    block_size: usize,
    backend: CryptoBackend,
) -> Result<()> {
    check_span(data.len(), keys.len(), block_size)?;
    match backend {
        CryptoBackend::TTable => {
            span_for_each(pool, data, block_size, keys, |block, key| {
                stats::count_scalar_blocks(block.len() / AES_BLOCK);
                let cipher = Aes256::new(key);
                cbc::encrypt_in_place(&cipher, iv, block).expect("span alignment checked");
            });
        }
        CryptoBackend::Fixsliced => {
            span_chunks(pool, data, block_size, keys, |span, ks| {
                let groups = span
                    .chunks_mut(fixsliced::WIDE_BLOCKS * block_size)
                    .zip(ks.chunks(fixsliced::WIDE_BLOCKS));
                for (run, group) in groups {
                    if group.len() >= WIDE_MIN_BLOCKS {
                        stats::count_wide_blocks(run.len() / AES_BLOCK);
                        fixsliced::cbc_encrypt_chains(group, iv, run, block_size);
                    } else {
                        stats::count_scalar_blocks(run.len() / AES_BLOCK);
                        for (block, key) in run.chunks_exact_mut(block_size).zip(group) {
                            let cipher = Aes256::new(key);
                            cbc::encrypt_in_place(&cipher, iv, block)
                                .expect("span alignment checked");
                        }
                    }
                }
            });
        }
    }
    Ok(())
}

/// Decryption of one contiguous span of whole blocks in place (inverse of
/// [`encrypt_span`]). Allocation-free.
///
/// Under [`CryptoBackend::Fixsliced`] every run decrypts through the wide
/// kernel unconditionally: CBC decryption is parallel *within* a chain, so
/// a single 4 KiB block already fills the slice.
pub fn decrypt_span(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    data: &mut [u8],
    block_size: usize,
    backend: CryptoBackend,
) -> Result<()> {
    check_span(data.len(), keys.len(), block_size)?;
    match backend {
        CryptoBackend::TTable => {
            span_for_each(pool, data, block_size, keys, |block, key| {
                stats::count_scalar_blocks(block.len() / AES_BLOCK);
                let cipher = Aes256::new(key);
                cbc::decrypt_in_place(&cipher, iv, block).expect("span alignment checked");
            });
        }
        CryptoBackend::Fixsliced => {
            span_chunks(pool, data, block_size, keys, |span, ks| {
                stats::count_wide_blocks(span.len() / AES_BLOCK);
                fixsliced::cbc_decrypt_chains(ks, iv, span, block_size);
            });
        }
    }
    Ok(())
}

/// CBC encryption of one contiguous span of whole blocks in place under one
/// shared cipher with per-block IVs (the EncFS layout). Allocation-free.
/// Wide/scalar dispatch follows [`encrypt_span`].
pub fn encrypt_span_with(
    pool: &CryptoPool,
    cipher: &SpanCipher,
    ivs: &[Iv128],
    data: &mut [u8],
    block_size: usize,
    backend: CryptoBackend,
) -> Result<()> {
    check_span(data.len(), ivs.len(), block_size)?;
    match backend {
        CryptoBackend::TTable => {
            span_for_each(pool, data, block_size, ivs, |block, iv| {
                stats::count_scalar_blocks(block.len() / AES_BLOCK);
                cbc::encrypt_in_place(cipher.tt(), iv, block).expect("span alignment checked");
            });
        }
        CryptoBackend::Fixsliced => {
            span_chunks(pool, data, block_size, ivs, |span, ivs| {
                let groups = span
                    .chunks_mut(fixsliced::WIDE_BLOCKS * block_size)
                    .zip(ivs.chunks(fixsliced::WIDE_BLOCKS));
                for (run, group) in groups {
                    if group.len() >= WIDE_MIN_BLOCKS {
                        stats::count_wide_blocks(run.len() / AES_BLOCK);
                        fixsliced::cbc_encrypt_chains_shared(cipher.fix(), group, run, block_size);
                    } else {
                        stats::count_scalar_blocks(run.len() / AES_BLOCK);
                        for (block, iv) in run.chunks_exact_mut(block_size).zip(group) {
                            cbc::encrypt_in_place(cipher.tt(), iv, block)
                                .expect("span alignment checked");
                        }
                    }
                }
            });
        }
    }
    Ok(())
}

/// CBC decryption of one contiguous span of whole blocks in place under one
/// shared cipher with per-block IVs (inverse of [`encrypt_span_with`]).
/// Allocation-free. Wide/scalar dispatch follows [`decrypt_span`].
pub fn decrypt_span_with(
    pool: &CryptoPool,
    cipher: &SpanCipher,
    ivs: &[Iv128],
    data: &mut [u8],
    block_size: usize,
    backend: CryptoBackend,
) -> Result<()> {
    check_span(data.len(), ivs.len(), block_size)?;
    match backend {
        CryptoBackend::TTable => {
            span_for_each(pool, data, block_size, ivs, |block, iv| {
                stats::count_scalar_blocks(block.len() / AES_BLOCK);
                cbc::decrypt_in_place(cipher.tt(), iv, block).expect("span alignment checked");
            });
        }
        CryptoBackend::Fixsliced => {
            span_chunks(pool, data, block_size, ivs, |span, ivs| {
                stats::count_wide_blocks(span.len() / AES_BLOCK);
                fixsliced::cbc_decrypt_chains_shared(cipher.fix(), ivs, span, block_size);
            });
        }
    }
    Ok(())
}

/// CBC encryption of every block in place under one shared cipher with a
/// per-block IV (the EncFS layout). `ivs` and `blocks` must be parallel
/// slices of equal length.
pub fn encrypt_blocks_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(ivs.len(), blocks.len(), "one IV per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, ivs, |block, iv| {
        cbc::encrypt_in_place(cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// CBC decryption of every block in place under one shared cipher with a
/// per-block IV (inverse of [`encrypt_blocks_with`]).
pub fn decrypt_blocks_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(ivs.len(), blocks.len(), "one IV per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, ivs, |block, iv| {
        cbc::decrypt_in_place(cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Decrypts one long CBC buffer in parallel chunks.
///
/// CBC *encryption* is a strict chain, but decrypting AES block `i` only
/// needs ciphertext blocks `i` and `i - 1`, so the buffer splits at any
/// 16-byte boundary into chunks whose IV is the last ciphertext block of the
/// preceding chunk. The chunk IVs are snapshotted before any decryption
/// starts, then the chunks decrypt concurrently.
pub fn cbc_decrypt_parallel(
    pool: &CryptoPool,
    cipher: &SpanCipher,
    iv: &Iv128,
    data: &mut [u8],
    backend: CryptoBackend,
) -> Result<()> {
    if !data.len().is_multiple_of(AES_BLOCK) {
        return Err(CryptoError::InvalidLength {
            len: data.len(),
            expected_multiple_of: AES_BLOCK,
        });
    }
    if data.is_empty() {
        return Ok(());
    }
    let aes_blocks = data.len() / AES_BLOCK;
    let chunk_aes_blocks = aes_blocks.div_ceil(pool.workers()).max(1);
    let chunk = chunk_aes_blocks * AES_BLOCK;
    // Snapshot each chunk's IV (the previous chunk's final ciphertext block)
    // before decryption overwrites it.
    let mut ivs: Vec<Iv128> = Vec::with_capacity(aes_blocks.div_ceil(chunk_aes_blocks));
    ivs.push(*iv);
    let mut boundary = chunk;
    while boundary < data.len() {
        let mut prev = [0u8; AES_BLOCK];
        prev.copy_from_slice(&data[boundary - AES_BLOCK..boundary]);
        ivs.push(prev);
        boundary += chunk;
    }
    let mut work: Vec<(&mut [u8], Iv128)> = data.chunks_mut(chunk).zip(ivs).collect();
    pool.for_each(&mut work, |(part, part_iv)| match backend {
        CryptoBackend::TTable => {
            stats::count_scalar_blocks(part.len() / AES_BLOCK);
            cbc::decrypt_in_place(cipher.tt(), part_iv, part).expect("alignment checked above");
        }
        CryptoBackend::Fixsliced => {
            stats::count_wide_blocks(part.len() / AES_BLOCK);
            fixsliced::cbc_decrypt(cipher.fix(), part_iv, part);
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FIXED_IV;

    fn pool() -> CryptoPool {
        CryptoPool::new(3)
    }

    fn sample_blocks(n: usize, bs: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..bs).map(|j| (i * 31 + j) as u8).collect())
            .collect()
    }

    #[test]
    fn derive_keys_matches_serial_derivation() {
        let kdf = ConvergentKdf::new(&[0x11; 32]);
        let blocks = sample_blocks(17, 256);
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let keys = derive_keys(&pool(), &kdf, &refs);
        for (block, key) in blocks.iter().zip(&keys) {
            assert_eq!(*key, kdf.derive_for_block(block));
        }
    }

    #[test]
    fn encrypt_decrypt_blocks_round_trip_and_match_serial() {
        let kdf = ConvergentKdf::new(&[0x22; 32]);
        let plain = sample_blocks(9, 128);
        let refs: Vec<&[u8]> = plain.iter().map(|b| b.as_slice()).collect();
        let keys = derive_keys(&pool(), &kdf, &refs);

        let mut batch = plain.clone();
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            encrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
        }
        // Serial reference.
        for (i, block) in plain.iter().enumerate() {
            let mut serial = block.clone();
            cbc::encrypt_in_place(&Aes256::new(&keys[i]), &FIXED_IV, &mut serial).unwrap();
            assert_eq!(serial, batch[i], "block {i} diverged from serial CBC");
        }
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            decrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
        }
        assert_eq!(batch, plain);
    }

    #[test]
    fn shared_cipher_per_block_ivs_round_trip() {
        let cipher = Aes256::new(&[0x33; 32]);
        let plain = sample_blocks(11, 64);
        let ivs: Vec<Iv128> = (0..11u8).map(|i| [i; 16]).collect();
        let mut batch = plain.clone();
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            encrypt_blocks_with(&pool(), &cipher, &ivs, &mut refs).unwrap();
        }
        for (i, block) in plain.iter().enumerate() {
            let mut serial = block.clone();
            cbc::encrypt_in_place(&cipher, &ivs[i], &mut serial).unwrap();
            assert_eq!(serial, batch[i]);
        }
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            decrypt_blocks_with(&pool(), &cipher, &ivs, &mut refs).unwrap();
        }
        assert_eq!(batch, plain);
    }

    const BACKENDS: [CryptoBackend; 2] = [CryptoBackend::Fixsliced, CryptoBackend::TTable];

    #[test]
    fn cbc_decrypt_parallel_matches_serial_for_odd_sizes() {
        let cipher = SpanCipher::new(&[0x44; 32]);
        for backend in BACKENDS {
            for aes_blocks in [0usize, 1, 2, 3, 7, 64, 65, 255] {
                let plain: Vec<u8> = (0..aes_blocks * 16).map(|i| (i % 253) as u8).collect();
                let mut ct = plain.clone();
                cbc::encrypt_in_place(cipher.tt(), &FIXED_IV, &mut ct).unwrap();
                let mut par = ct.clone();
                cbc_decrypt_parallel(&pool(), &cipher, &FIXED_IV, &mut par, backend).unwrap();
                assert_eq!(par, plain, "{aes_blocks} AES blocks ({backend:?})");
            }
        }
    }

    #[test]
    fn span_apis_match_reference_slice_apis() {
        let kdf = ConvergentKdf::new(&[0x55; 32]);
        let cipher = SpanCipher::new(&[0x66; 32]);
        // 7 straddles the SHA_LANES tail; 9 and 16 straddle WIDE_MIN_BLOCKS,
        // so both sides of every wide/scalar dispatch run under each backend.
        for backend in BACKENDS {
            for blocks in [1usize, 2, 3, 4, 7, 9, 16, 21] {
                let bs = 128;
                let span: Vec<u8> = (0..blocks * bs).map(|i| (i % 251) as u8).collect();

                // derive_span_into == derive_keys on the same blocks.
                let refs: Vec<&[u8]> = span.chunks(bs).collect();
                let expected_keys = derive_keys(&pool(), &kdf, &refs);
                let mut keys = vec![[0u8; 32]; blocks];
                derive_span_into(&pool(), &kdf, &span, bs, &mut keys, backend).unwrap();
                assert_eq!(keys, expected_keys, "{blocks} blocks ({backend:?})");

                // encrypt_span/decrypt_span == encrypt_blocks/decrypt_blocks.
                let mut a = span.clone();
                encrypt_span(&pool(), &keys, &FIXED_IV, &mut a, bs, backend).unwrap();
                let mut b = span.clone();
                {
                    let mut refs: Vec<&mut [u8]> = b.chunks_mut(bs).collect();
                    encrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
                }
                assert_eq!(a, b, "{blocks} blocks ({backend:?})");
                decrypt_span(&pool(), &keys, &FIXED_IV, &mut a, bs, backend).unwrap();
                assert_eq!(a, span, "{blocks} blocks ({backend:?})");

                // The shared-cipher per-IV variants agree too.
                let ivs: Vec<Iv128> = (0..blocks as u8).map(|i| [i ^ 0x3c; 16]).collect();
                let mut c = span.clone();
                encrypt_span_with(&pool(), &cipher, &ivs, &mut c, bs, backend).unwrap();
                let mut d = span.clone();
                {
                    let mut refs: Vec<&mut [u8]> = d.chunks_mut(bs).collect();
                    encrypt_blocks_with(&pool(), cipher.tt(), &ivs, &mut refs).unwrap();
                }
                assert_eq!(c, d, "{blocks} blocks ({backend:?})");
                decrypt_span_with(&pool(), &cipher, &ivs, &mut c, bs, backend).unwrap();
                assert_eq!(c, span, "{blocks} blocks ({backend:?})");
            }
        }
    }

    #[test]
    fn backends_produce_identical_ciphertext() {
        // The backend must never change bytes on disk — only how they are
        // computed. 4 KiB blocks exercise the real data-path shape.
        let kdf = ConvergentKdf::new(&[0x77; 32]);
        let bs = 4096;
        let blocks = 12;
        let span: Vec<u8> = (0..blocks * bs).map(|i| (i * 7 % 256) as u8).collect();
        let mut keys_fix = vec![[0u8; 32]; blocks];
        let mut keys_tt = vec![[0u8; 32]; blocks];
        derive_span_into(
            &pool(),
            &kdf,
            &span,
            bs,
            &mut keys_fix,
            CryptoBackend::Fixsliced,
        )
        .unwrap();
        derive_span_into(
            &pool(),
            &kdf,
            &span,
            bs,
            &mut keys_tt,
            CryptoBackend::TTable,
        )
        .unwrap();
        assert_eq!(keys_fix, keys_tt);
        let mut fix = span.clone();
        encrypt_span(
            &pool(),
            &keys_fix,
            &FIXED_IV,
            &mut fix,
            bs,
            CryptoBackend::Fixsliced,
        )
        .unwrap();
        let mut tt = span.clone();
        encrypt_span(
            &pool(),
            &keys_tt,
            &FIXED_IV,
            &mut tt,
            bs,
            CryptoBackend::TTable,
        )
        .unwrap();
        assert_eq!(fix, tt, "backends must produce byte-identical ciphertext");
        decrypt_span(
            &pool(),
            &keys_fix,
            &FIXED_IV,
            &mut tt,
            bs,
            CryptoBackend::Fixsliced,
        )
        .unwrap();
        assert_eq!(tt, span);
    }

    #[test]
    fn span_length_mismatches_rejected() {
        let kdf = ConvergentKdf::new(&[1; 32]);
        let backend = CryptoBackend::default();
        let mut keys = [[0u8; 32]; 2];
        assert!(derive_span_into(&pool(), &kdf, &[0u8; 100], 64, &mut keys, backend).is_err());
        let mut data = vec![0u8; 100];
        assert!(encrypt_span(&pool(), &[[0u8; 32]; 2], &FIXED_IV, &mut data, 64, backend).is_err());
        let mut aligned = vec![0u8; 128];
        assert!(decrypt_span(
            &pool(),
            &[[0u8; 32]; 2],
            &FIXED_IV,
            &mut aligned,
            63,
            backend
        )
        .is_err());
    }

    #[test]
    fn misaligned_blocks_rejected() {
        let mut bad = vec![0u8; 17];
        let mut refs: Vec<&mut [u8]> = vec![bad.as_mut_slice()];
        assert!(encrypt_blocks(&pool(), &[[0u8; 32]], &FIXED_IV, &mut refs).is_err());
        let cipher = SpanCipher::new(&[0u8; 32]);
        for backend in BACKENDS {
            assert!(cbc_decrypt_parallel(&pool(), &cipher, &FIXED_IV, &mut bad, backend).is_err());
        }
    }
}
