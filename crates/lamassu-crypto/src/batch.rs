//! Batch (span-granular) cryptography over slices of blocks.
//!
//! The shims' span pipeline hands whole runs of blocks to the crypto layer at
//! once; the functions here fan that work out across a
//! [`CryptoPool`] so convergent hashing and AES for
//! a span run in parallel rather than serially per block:
//!
//! * [`derive_keys`] / [`derive_keys_into`] — Equation 1 for every block of
//!   a span;
//! * [`encrypt_blocks`] / [`decrypt_blocks`] — Equation 2 under per-block
//!   convergent keys and the shared [`FIXED_IV`](crate::FIXED_IV)
//!   (LamassuFS data blocks);
//! * [`encrypt_blocks_with`] / [`decrypt_blocks_with`] — one shared cipher
//!   with per-block IVs (the EncFS baseline's layout);
//! * [`cbc_decrypt_parallel`] — chunked CBC decryption of one large buffer
//!   (CBC decryption only needs the *previous ciphertext block*, so a long
//!   chain splits into independently decryptable chunks; used by the
//!   whole-file CeFileFS baseline).
//!
//! # The contiguous-span fast path
//!
//! The `*_span*` variants ([`derive_span_into`], [`encrypt_span`],
//! [`decrypt_span`], [`encrypt_span_with`], [`decrypt_span_with`]) operate
//! on one **contiguous** buffer of whole blocks instead of a slice of block
//! references. That shape is what the zero-allocation data path produces
//! (aligned reads land in one caller-buffer region; commits stage through
//! one reusable span buffer), and it frees the batch layer of work-vector
//! building: the **inline path performs no allocation at all** (lazy chunk
//! iterators), and the parallel path splits both the data and the key/IV
//! slices by arithmetic, paying only the `O(workers)` thread-scope fan-out
//! (which is why the zero-allocation guarantee is stated for the inline
//! regime — see [`CryptoPool::runs_inline`]). The reference-slice APIs
//! remain for heterogeneous batches and share the same property via
//! [`CryptoPool::zip_for_each`].
//!
//! Every function validates block alignment up front and then runs the
//! parallel section infallibly, so no error handling crosses threads.

use crate::aes::Aes256;
use crate::cbc;
use crate::kdf::ConvergentKdf;
use crate::pool::CryptoPool;
use crate::{CryptoError, Iv128, Key256, Result};

/// AES block size in bytes.
const AES_BLOCK: usize = 16;

fn check_aligned(blocks: &[&mut [u8]]) -> Result<()> {
    for block in blocks {
        if !block.len().is_multiple_of(AES_BLOCK) {
            return Err(CryptoError::InvalidLength {
                len: block.len(),
                expected_multiple_of: AES_BLOCK,
            });
        }
    }
    Ok(())
}

/// Validates that a contiguous span covers exactly `blocks` whole blocks of
/// `block_size` bytes, each AES-aligned.
fn check_span(data_len: usize, blocks: usize, block_size: usize) -> Result<()> {
    if !block_size.is_multiple_of(AES_BLOCK) || block_size == 0 {
        return Err(CryptoError::InvalidLength {
            len: block_size,
            expected_multiple_of: AES_BLOCK,
        });
    }
    if data_len != blocks * block_size {
        return Err(CryptoError::InvalidLength {
            len: data_len,
            expected_multiple_of: block_size,
        });
    }
    Ok(())
}

/// Derives the convergent key (Equation 1) for every block into
/// caller-provided storage, in parallel. Allocation-free.
///
/// Panics if `blocks` and `out` differ in length.
pub fn derive_keys_into(
    pool: &CryptoPool,
    kdf: &ConvergentKdf,
    blocks: &[&[u8]],
    out: &mut [Key256],
) {
    pool.zip_for_each(out, blocks, |key, block| *key = kdf.derive_for_block(block));
}

/// Derives the convergent key (Equation 1) for every block, in parallel.
pub fn derive_keys(pool: &CryptoPool, kdf: &ConvergentKdf, blocks: &[&[u8]]) -> Vec<Key256> {
    let mut keys = vec![[0u8; 32]; blocks.len()];
    derive_keys_into(pool, kdf, blocks, &mut keys);
    keys
}

/// Derives the convergent key for every `block_size`-byte block of one
/// contiguous span into caller-provided storage, in parallel.
/// Allocation-free on the inline path; the parallel path pays only the
/// `O(workers)` thread-scope fan-out (no work vectors).
///
/// Returns [`CryptoError::InvalidLength`] unless
/// `data.len() == out.len() * block_size`.
pub fn derive_span_into(
    pool: &CryptoPool,
    kdf: &ConvergentKdf,
    data: &[u8],
    block_size: usize,
    out: &mut [Key256],
) -> Result<()> {
    if block_size == 0 || data.len() != out.len() * block_size {
        return Err(CryptoError::InvalidLength {
            len: data.len(),
            expected_multiple_of: block_size.max(1),
        });
    }
    match pool.chunking(out.len()) {
        None => {
            for (key, block) in out.iter_mut().zip(data.chunks_exact(block_size)) {
                *key = kdf.derive_for_block(block);
            }
        }
        Some(chunk) => std::thread::scope(|scope| {
            for (keys, span) in out.chunks_mut(chunk).zip(data.chunks(chunk * block_size)) {
                scope.spawn(move || {
                    for (key, block) in keys.iter_mut().zip(span.chunks_exact(block_size)) {
                        *key = kdf.derive_for_block(block);
                    }
                });
            }
        }),
    }
    Ok(())
}

/// Convergent encryption (Equation 2) of every block in place, each under its
/// own key and the shared fixed IV. `keys` and `blocks` must be parallel
/// slices of equal length.
pub fn encrypt_blocks(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(keys.len(), blocks.len(), "one key per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, keys, |block, key| {
        let cipher = Aes256::new(key);
        cbc::encrypt_in_place(&cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Decryption of every block in place, each under its own key and the shared
/// fixed IV (inverse of [`encrypt_blocks`]).
pub fn decrypt_blocks(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(keys.len(), blocks.len(), "one key per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, keys, |block, key| {
        let cipher = Aes256::new(key);
        cbc::decrypt_in_place(&cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Runs `f` over every `(block, context)` pair of one contiguous span —
/// inline or fanned out across the pool — without allocating.
fn span_for_each<B: Sync>(
    pool: &CryptoPool,
    data: &mut [u8],
    block_size: usize,
    ctx: &[B],
    f: impl Fn(&mut [u8], &B) + Sync,
) {
    match pool.chunking(ctx.len()) {
        None => {
            for (block, c) in data.chunks_exact_mut(block_size).zip(ctx) {
                f(block, c);
            }
        }
        Some(chunk) => {
            let f = &f;
            std::thread::scope(|scope| {
                for (span, cs) in data.chunks_mut(chunk * block_size).zip(ctx.chunks(chunk)) {
                    scope.spawn(move || {
                        for (block, c) in span.chunks_exact_mut(block_size).zip(cs) {
                            f(block, c);
                        }
                    });
                }
            })
        }
    }
}

/// Convergent encryption (Equation 2) of one contiguous span of whole
/// blocks in place, each block under its own key and the shared fixed IV.
/// Allocation-free (the contiguous dual of [`encrypt_blocks`]).
pub fn encrypt_span(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    data: &mut [u8],
    block_size: usize,
) -> Result<()> {
    check_span(data.len(), keys.len(), block_size)?;
    span_for_each(pool, data, block_size, keys, |block, key| {
        let cipher = Aes256::new(key);
        cbc::encrypt_in_place(&cipher, iv, block).expect("span alignment checked");
    });
    Ok(())
}

/// Decryption of one contiguous span of whole blocks in place (inverse of
/// [`encrypt_span`]). Allocation-free.
pub fn decrypt_span(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    data: &mut [u8],
    block_size: usize,
) -> Result<()> {
    check_span(data.len(), keys.len(), block_size)?;
    span_for_each(pool, data, block_size, keys, |block, key| {
        let cipher = Aes256::new(key);
        cbc::decrypt_in_place(&cipher, iv, block).expect("span alignment checked");
    });
    Ok(())
}

/// CBC encryption of one contiguous span of whole blocks in place under one
/// shared cipher with per-block IVs (the EncFS layout). Allocation-free.
pub fn encrypt_span_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    data: &mut [u8],
    block_size: usize,
) -> Result<()> {
    check_span(data.len(), ivs.len(), block_size)?;
    span_for_each(pool, data, block_size, ivs, |block, iv| {
        cbc::encrypt_in_place(cipher, iv, block).expect("span alignment checked");
    });
    Ok(())
}

/// CBC decryption of one contiguous span of whole blocks in place under one
/// shared cipher with per-block IVs (inverse of [`encrypt_span_with`]).
/// Allocation-free.
pub fn decrypt_span_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    data: &mut [u8],
    block_size: usize,
) -> Result<()> {
    check_span(data.len(), ivs.len(), block_size)?;
    span_for_each(pool, data, block_size, ivs, |block, iv| {
        cbc::decrypt_in_place(cipher, iv, block).expect("span alignment checked");
    });
    Ok(())
}

/// CBC encryption of every block in place under one shared cipher with a
/// per-block IV (the EncFS layout). `ivs` and `blocks` must be parallel
/// slices of equal length.
pub fn encrypt_blocks_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(ivs.len(), blocks.len(), "one IV per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, ivs, |block, iv| {
        cbc::encrypt_in_place(cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// CBC decryption of every block in place under one shared cipher with a
/// per-block IV (inverse of [`encrypt_blocks_with`]).
pub fn decrypt_blocks_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(ivs.len(), blocks.len(), "one IV per block");
    check_aligned(blocks)?;
    pool.zip_for_each(blocks, ivs, |block, iv| {
        cbc::decrypt_in_place(cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Decrypts one long CBC buffer in parallel chunks.
///
/// CBC *encryption* is a strict chain, but decrypting AES block `i` only
/// needs ciphertext blocks `i` and `i - 1`, so the buffer splits at any
/// 16-byte boundary into chunks whose IV is the last ciphertext block of the
/// preceding chunk. The chunk IVs are snapshotted before any decryption
/// starts, then the chunks decrypt concurrently.
pub fn cbc_decrypt_parallel(
    pool: &CryptoPool,
    cipher: &Aes256,
    iv: &Iv128,
    data: &mut [u8],
) -> Result<()> {
    if !data.len().is_multiple_of(AES_BLOCK) {
        return Err(CryptoError::InvalidLength {
            len: data.len(),
            expected_multiple_of: AES_BLOCK,
        });
    }
    if data.is_empty() {
        return Ok(());
    }
    let aes_blocks = data.len() / AES_BLOCK;
    let chunk_aes_blocks = aes_blocks.div_ceil(pool.workers()).max(1);
    let chunk = chunk_aes_blocks * AES_BLOCK;
    // Snapshot each chunk's IV (the previous chunk's final ciphertext block)
    // before decryption overwrites it.
    let mut ivs: Vec<Iv128> = Vec::with_capacity(aes_blocks.div_ceil(chunk_aes_blocks));
    ivs.push(*iv);
    let mut boundary = chunk;
    while boundary < data.len() {
        let mut prev = [0u8; AES_BLOCK];
        prev.copy_from_slice(&data[boundary - AES_BLOCK..boundary]);
        ivs.push(prev);
        boundary += chunk;
    }
    let mut work: Vec<(&mut [u8], Iv128)> = data.chunks_mut(chunk).zip(ivs).collect();
    pool.for_each(&mut work, |(part, part_iv)| {
        cbc::decrypt_in_place(cipher, part_iv, part).expect("alignment checked above");
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FIXED_IV;

    fn pool() -> CryptoPool {
        CryptoPool::new(3)
    }

    fn sample_blocks(n: usize, bs: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..bs).map(|j| (i * 31 + j) as u8).collect())
            .collect()
    }

    #[test]
    fn derive_keys_matches_serial_derivation() {
        let kdf = ConvergentKdf::new(&[0x11; 32]);
        let blocks = sample_blocks(17, 256);
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let keys = derive_keys(&pool(), &kdf, &refs);
        for (block, key) in blocks.iter().zip(&keys) {
            assert_eq!(*key, kdf.derive_for_block(block));
        }
    }

    #[test]
    fn encrypt_decrypt_blocks_round_trip_and_match_serial() {
        let kdf = ConvergentKdf::new(&[0x22; 32]);
        let plain = sample_blocks(9, 128);
        let refs: Vec<&[u8]> = plain.iter().map(|b| b.as_slice()).collect();
        let keys = derive_keys(&pool(), &kdf, &refs);

        let mut batch = plain.clone();
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            encrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
        }
        // Serial reference.
        for (i, block) in plain.iter().enumerate() {
            let mut serial = block.clone();
            cbc::encrypt_in_place(&Aes256::new(&keys[i]), &FIXED_IV, &mut serial).unwrap();
            assert_eq!(serial, batch[i], "block {i} diverged from serial CBC");
        }
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            decrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
        }
        assert_eq!(batch, plain);
    }

    #[test]
    fn shared_cipher_per_block_ivs_round_trip() {
        let cipher = Aes256::new(&[0x33; 32]);
        let plain = sample_blocks(11, 64);
        let ivs: Vec<Iv128> = (0..11u8).map(|i| [i; 16]).collect();
        let mut batch = plain.clone();
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            encrypt_blocks_with(&pool(), &cipher, &ivs, &mut refs).unwrap();
        }
        for (i, block) in plain.iter().enumerate() {
            let mut serial = block.clone();
            cbc::encrypt_in_place(&cipher, &ivs[i], &mut serial).unwrap();
            assert_eq!(serial, batch[i]);
        }
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            decrypt_blocks_with(&pool(), &cipher, &ivs, &mut refs).unwrap();
        }
        assert_eq!(batch, plain);
    }

    #[test]
    fn cbc_decrypt_parallel_matches_serial_for_odd_sizes() {
        let cipher = Aes256::new(&[0x44; 32]);
        for aes_blocks in [0usize, 1, 2, 3, 7, 64, 65, 255] {
            let plain: Vec<u8> = (0..aes_blocks * 16).map(|i| (i % 253) as u8).collect();
            let mut ct = plain.clone();
            cbc::encrypt_in_place(&cipher, &FIXED_IV, &mut ct).unwrap();
            let mut par = ct.clone();
            cbc_decrypt_parallel(&pool(), &cipher, &FIXED_IV, &mut par).unwrap();
            assert_eq!(par, plain, "{aes_blocks} AES blocks");
        }
    }

    #[test]
    fn span_apis_match_reference_slice_apis() {
        let kdf = ConvergentKdf::new(&[0x55; 32]);
        let cipher = Aes256::new(&[0x66; 32]);
        for blocks in [1usize, 2, 3, 4, 7, 16] {
            let bs = 128;
            let span: Vec<u8> = (0..blocks * bs).map(|i| (i % 251) as u8).collect();

            // derive_span_into == derive_keys on the same blocks.
            let refs: Vec<&[u8]> = span.chunks(bs).collect();
            let expected_keys = derive_keys(&pool(), &kdf, &refs);
            let mut keys = vec![[0u8; 32]; blocks];
            derive_span_into(&pool(), &kdf, &span, bs, &mut keys).unwrap();
            assert_eq!(keys, expected_keys, "{blocks} blocks");

            // encrypt_span/decrypt_span == encrypt_blocks/decrypt_blocks.
            let mut a = span.clone();
            encrypt_span(&pool(), &keys, &FIXED_IV, &mut a, bs).unwrap();
            let mut b = span.clone();
            {
                let mut refs: Vec<&mut [u8]> = b.chunks_mut(bs).collect();
                encrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
            }
            assert_eq!(a, b);
            decrypt_span(&pool(), &keys, &FIXED_IV, &mut a, bs).unwrap();
            assert_eq!(a, span);

            // The shared-cipher per-IV variants agree too.
            let ivs: Vec<Iv128> = (0..blocks as u8).map(|i| [i ^ 0x3c; 16]).collect();
            let mut c = span.clone();
            encrypt_span_with(&pool(), &cipher, &ivs, &mut c, bs).unwrap();
            let mut d = span.clone();
            {
                let mut refs: Vec<&mut [u8]> = d.chunks_mut(bs).collect();
                encrypt_blocks_with(&pool(), &cipher, &ivs, &mut refs).unwrap();
            }
            assert_eq!(c, d);
            decrypt_span_with(&pool(), &cipher, &ivs, &mut c, bs).unwrap();
            assert_eq!(c, span);
        }
    }

    #[test]
    fn span_length_mismatches_rejected() {
        let kdf = ConvergentKdf::new(&[1; 32]);
        let mut keys = [[0u8; 32]; 2];
        assert!(derive_span_into(&pool(), &kdf, &[0u8; 100], 64, &mut keys).is_err());
        let mut data = vec![0u8; 100];
        assert!(encrypt_span(&pool(), &[[0u8; 32]; 2], &FIXED_IV, &mut data, 64).is_err());
        let mut aligned = vec![0u8; 128];
        assert!(decrypt_span(&pool(), &[[0u8; 32]; 2], &FIXED_IV, &mut aligned, 63).is_err());
    }

    #[test]
    fn misaligned_blocks_rejected() {
        let mut bad = vec![0u8; 17];
        let mut refs: Vec<&mut [u8]> = vec![bad.as_mut_slice()];
        assert!(encrypt_blocks(&pool(), &[[0u8; 32]], &FIXED_IV, &mut refs).is_err());
        let cipher = Aes256::new(&[0u8; 32]);
        assert!(cbc_decrypt_parallel(&pool(), &cipher, &FIXED_IV, &mut bad).is_err());
    }
}
