//! Batch (span-granular) cryptography over slices of blocks.
//!
//! The shims' span pipeline hands whole runs of blocks to the crypto layer at
//! once; the functions here fan that work out across a
//! [`CryptoPool`] so convergent hashing and AES for
//! a span run in parallel rather than serially per block:
//!
//! * [`derive_keys`] — Equation 1 for every block of a span;
//! * [`encrypt_blocks`] / [`decrypt_blocks`] — Equation 2 under per-block
//!   convergent keys and the shared [`FIXED_IV`](crate::FIXED_IV)
//!   (LamassuFS data blocks);
//! * [`encrypt_blocks_with`] / [`decrypt_blocks_with`] — one shared cipher
//!   with per-block IVs (the EncFS baseline's layout);
//! * [`cbc_decrypt_parallel`] — chunked CBC decryption of one large buffer
//!   (CBC decryption only needs the *previous ciphertext block*, so a long
//!   chain splits into independently decryptable chunks; used by the
//!   whole-file CeFileFS baseline).
//!
//! Every function validates block alignment up front and then runs the
//! parallel section infallibly, so no error handling crosses threads.

use crate::aes::Aes256;
use crate::cbc;
use crate::kdf::ConvergentKdf;
use crate::pool::CryptoPool;
use crate::{CryptoError, Iv128, Key256, Result};

/// AES block size in bytes.
const AES_BLOCK: usize = 16;

fn check_aligned(blocks: &[&mut [u8]]) -> Result<()> {
    for block in blocks {
        if !block.len().is_multiple_of(AES_BLOCK) {
            return Err(CryptoError::InvalidLength {
                len: block.len(),
                expected_multiple_of: AES_BLOCK,
            });
        }
    }
    Ok(())
}

/// Derives the convergent key (Equation 1) for every block, in parallel.
pub fn derive_keys(pool: &CryptoPool, kdf: &ConvergentKdf, blocks: &[&[u8]]) -> Vec<Key256> {
    let mut keys = vec![[0u8; 32]; blocks.len()];
    let mut work: Vec<(&[u8], &mut Key256)> = blocks.iter().copied().zip(keys.iter_mut()).collect();
    pool.for_each(&mut work, |(block, key)| {
        **key = kdf.derive_for_block(block)
    });
    keys
}

/// Convergent encryption (Equation 2) of every block in place, each under its
/// own key and the shared fixed IV. `keys` and `blocks` must be parallel
/// slices of equal length.
pub fn encrypt_blocks(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(keys.len(), blocks.len(), "one key per block");
    check_aligned(blocks)?;
    let mut work: Vec<(&mut [u8], &Key256)> = blocks
        .iter_mut()
        .map(|b| &mut **b)
        .zip(keys.iter())
        .collect();
    pool.for_each(&mut work, |(block, key)| {
        let cipher = Aes256::new(key);
        cbc::encrypt_in_place(&cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Decryption of every block in place, each under its own key and the shared
/// fixed IV (inverse of [`encrypt_blocks`]).
pub fn decrypt_blocks(
    pool: &CryptoPool,
    keys: &[Key256],
    iv: &Iv128,
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(keys.len(), blocks.len(), "one key per block");
    check_aligned(blocks)?;
    let mut work: Vec<(&mut [u8], &Key256)> = blocks
        .iter_mut()
        .map(|b| &mut **b)
        .zip(keys.iter())
        .collect();
    pool.for_each(&mut work, |(block, key)| {
        let cipher = Aes256::new(key);
        cbc::decrypt_in_place(&cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// CBC encryption of every block in place under one shared cipher with a
/// per-block IV (the EncFS layout). `ivs` and `blocks` must be parallel
/// slices of equal length.
pub fn encrypt_blocks_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(ivs.len(), blocks.len(), "one IV per block");
    check_aligned(blocks)?;
    let mut work: Vec<(&mut [u8], &Iv128)> = blocks
        .iter_mut()
        .map(|b| &mut **b)
        .zip(ivs.iter())
        .collect();
    pool.for_each(&mut work, |(block, iv)| {
        cbc::encrypt_in_place(cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// CBC decryption of every block in place under one shared cipher with a
/// per-block IV (inverse of [`encrypt_blocks_with`]).
pub fn decrypt_blocks_with(
    pool: &CryptoPool,
    cipher: &Aes256,
    ivs: &[Iv128],
    blocks: &mut [&mut [u8]],
) -> Result<()> {
    assert_eq!(ivs.len(), blocks.len(), "one IV per block");
    check_aligned(blocks)?;
    let mut work: Vec<(&mut [u8], &Iv128)> = blocks
        .iter_mut()
        .map(|b| &mut **b)
        .zip(ivs.iter())
        .collect();
    pool.for_each(&mut work, |(block, iv)| {
        cbc::decrypt_in_place(cipher, iv, block).expect("alignment checked above");
    });
    Ok(())
}

/// Decrypts one long CBC buffer in parallel chunks.
///
/// CBC *encryption* is a strict chain, but decrypting AES block `i` only
/// needs ciphertext blocks `i` and `i - 1`, so the buffer splits at any
/// 16-byte boundary into chunks whose IV is the last ciphertext block of the
/// preceding chunk. The chunk IVs are snapshotted before any decryption
/// starts, then the chunks decrypt concurrently.
pub fn cbc_decrypt_parallel(
    pool: &CryptoPool,
    cipher: &Aes256,
    iv: &Iv128,
    data: &mut [u8],
) -> Result<()> {
    if !data.len().is_multiple_of(AES_BLOCK) {
        return Err(CryptoError::InvalidLength {
            len: data.len(),
            expected_multiple_of: AES_BLOCK,
        });
    }
    if data.is_empty() {
        return Ok(());
    }
    let aes_blocks = data.len() / AES_BLOCK;
    let chunk_aes_blocks = aes_blocks.div_ceil(pool.workers()).max(1);
    let chunk = chunk_aes_blocks * AES_BLOCK;
    // Snapshot each chunk's IV (the previous chunk's final ciphertext block)
    // before decryption overwrites it.
    let mut ivs: Vec<Iv128> = Vec::with_capacity(aes_blocks.div_ceil(chunk_aes_blocks));
    ivs.push(*iv);
    let mut boundary = chunk;
    while boundary < data.len() {
        let mut prev = [0u8; AES_BLOCK];
        prev.copy_from_slice(&data[boundary - AES_BLOCK..boundary]);
        ivs.push(prev);
        boundary += chunk;
    }
    let mut work: Vec<(&mut [u8], Iv128)> = data.chunks_mut(chunk).zip(ivs).collect();
    pool.for_each(&mut work, |(part, part_iv)| {
        cbc::decrypt_in_place(cipher, part_iv, part).expect("alignment checked above");
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FIXED_IV;

    fn pool() -> CryptoPool {
        CryptoPool::new(3)
    }

    fn sample_blocks(n: usize, bs: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..bs).map(|j| (i * 31 + j) as u8).collect())
            .collect()
    }

    #[test]
    fn derive_keys_matches_serial_derivation() {
        let kdf = ConvergentKdf::new(&[0x11; 32]);
        let blocks = sample_blocks(17, 256);
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let keys = derive_keys(&pool(), &kdf, &refs);
        for (block, key) in blocks.iter().zip(&keys) {
            assert_eq!(*key, kdf.derive_for_block(block));
        }
    }

    #[test]
    fn encrypt_decrypt_blocks_round_trip_and_match_serial() {
        let kdf = ConvergentKdf::new(&[0x22; 32]);
        let plain = sample_blocks(9, 128);
        let refs: Vec<&[u8]> = plain.iter().map(|b| b.as_slice()).collect();
        let keys = derive_keys(&pool(), &kdf, &refs);

        let mut batch = plain.clone();
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            encrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
        }
        // Serial reference.
        for (i, block) in plain.iter().enumerate() {
            let mut serial = block.clone();
            cbc::encrypt_in_place(&Aes256::new(&keys[i]), &FIXED_IV, &mut serial).unwrap();
            assert_eq!(serial, batch[i], "block {i} diverged from serial CBC");
        }
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            decrypt_blocks(&pool(), &keys, &FIXED_IV, &mut refs).unwrap();
        }
        assert_eq!(batch, plain);
    }

    #[test]
    fn shared_cipher_per_block_ivs_round_trip() {
        let cipher = Aes256::new(&[0x33; 32]);
        let plain = sample_blocks(11, 64);
        let ivs: Vec<Iv128> = (0..11u8).map(|i| [i; 16]).collect();
        let mut batch = plain.clone();
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            encrypt_blocks_with(&pool(), &cipher, &ivs, &mut refs).unwrap();
        }
        for (i, block) in plain.iter().enumerate() {
            let mut serial = block.clone();
            cbc::encrypt_in_place(&cipher, &ivs[i], &mut serial).unwrap();
            assert_eq!(serial, batch[i]);
        }
        {
            let mut refs: Vec<&mut [u8]> = batch.iter_mut().map(|b| b.as_mut_slice()).collect();
            decrypt_blocks_with(&pool(), &cipher, &ivs, &mut refs).unwrap();
        }
        assert_eq!(batch, plain);
    }

    #[test]
    fn cbc_decrypt_parallel_matches_serial_for_odd_sizes() {
        let cipher = Aes256::new(&[0x44; 32]);
        for aes_blocks in [0usize, 1, 2, 3, 7, 64, 65, 255] {
            let plain: Vec<u8> = (0..aes_blocks * 16).map(|i| (i % 253) as u8).collect();
            let mut ct = plain.clone();
            cbc::encrypt_in_place(&cipher, &FIXED_IV, &mut ct).unwrap();
            let mut par = ct.clone();
            cbc_decrypt_parallel(&pool(), &cipher, &FIXED_IV, &mut par).unwrap();
            assert_eq!(par, plain, "{aes_blocks} AES blocks");
        }
    }

    #[test]
    fn misaligned_blocks_rejected() {
        let mut bad = vec![0u8; 17];
        let mut refs: Vec<&mut [u8]> = vec![bad.as_mut_slice()];
        assert!(encrypt_blocks(&pool(), &[[0u8; 32]], &FIXED_IV, &mut refs).is_err());
        let cipher = Aes256::new(&[0u8; 32]);
        assert!(cbc_decrypt_parallel(&pool(), &cipher, &FIXED_IV, &mut bad).is_err());
    }
}
