//! AES-256-GCM authenticated encryption (NIST SP 800-38D).
//!
//! Lamassu encrypts every *metadata* block with AES-256-GCM under the outer
//! key and a random per-write IV (paper §2.2, Equation 3). The GCM
//! authentication tag stored in the metadata block header is what provides
//! metadata integrity (paper §2.5): a reader that lacks the outer key, or a
//! storage system that tampers with a metadata block, fails tag verification.
//!
//! Only 96-bit (12-byte) IVs are supported, which is the recommended GCM
//! nonce size and the one Lamassu uses; the 16-byte IV field in the metadata
//! block header stores the 12-byte nonce zero-padded.

use crate::aes::Aes256;
use crate::ctr::{ctr32_xor_in_place, inc32};
use crate::fixsliced::{self, Aes256Fix};
use crate::ghash::{Ghash, GhashKey};
use crate::util::constant_time_eq;
use crate::{stats, CryptoBackend, CryptoError, Key256, Result};

/// Length of a GCM nonce in bytes.
pub const NONCE_LEN: usize = 12;
/// Length of a GCM authentication tag in bytes.
pub const TAG_LEN: usize = 16;

/// An AES-256-GCM cipher instance bound to one key.
///
/// # Examples
///
/// ```
/// use lamassu_crypto::gcm::Aes256Gcm;
///
/// let gcm = Aes256Gcm::new(&[7u8; 32]);
/// let nonce = [1u8; 12];
/// let mut buf = b"segment metadata".to_vec();
/// let tag = gcm.encrypt_in_place(&nonce, b"aad", &mut buf);
/// gcm.decrypt_in_place(&nonce, b"aad", &mut buf, &tag).unwrap();
/// assert_eq!(buf, b"segment metadata");
/// ```
#[derive(Clone)]
pub struct Aes256Gcm {
    aes: Aes256,
    /// The fixsliced schedule, present under [`CryptoBackend::Fixsliced`];
    /// when set, the GHASH subkey, the CTR body and the tag mask all run
    /// through the constant-time kernel.
    fix: Option<Aes256Fix>,
    /// Precomputed GHASH nibble table for the subkey H = AES_K(0^128),
    /// built once per key (Shoup's 4-bit method — see [`crate::ghash`]).
    h: GhashKey,
}

impl Aes256Gcm {
    /// Creates a GCM instance from a 256-bit key on the default backend.
    pub fn new(key: &Key256) -> Self {
        Self::with_backend(key, CryptoBackend::default())
    }

    /// Creates a GCM instance bound to an explicit [`CryptoBackend`].
    pub fn with_backend(key: &Key256, backend: CryptoBackend) -> Self {
        let aes = Aes256::new(key);
        let fix = match backend {
            CryptoBackend::Fixsliced => Some(Aes256Fix::new(key)),
            CryptoBackend::TTable => None,
        };
        let h = match &fix {
            Some(fix) => GhashKey::new(&fix.encrypt_block(&[0u8; 16])),
            None => GhashKey::new(&aes.encrypt_block(&[0u8; 16])),
        };
        Aes256Gcm { aes, fix, h }
    }

    /// CTR keystream XOR starting at counter block `ctr`, dispatched to the
    /// active backend. CTR blocks are independent, so the wide kernel
    /// applies at any length.
    fn ctr32(&self, ctr: &[u8; 16], data: &mut [u8]) {
        match &self.fix {
            Some(fix) => {
                stats::count_wide_blocks(data.len().div_ceil(16));
                fixsliced::ctr32_xor(fix, ctr, data);
            }
            None => {
                stats::count_scalar_blocks(data.len().div_ceil(16));
                ctr32_xor_in_place(&self.aes, ctr, data);
            }
        }
    }

    /// Builds the pre-counter block J0 from a 96-bit nonce.
    fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// Encrypts `data` in place and returns the 16-byte authentication tag.
    ///
    /// `aad` is additional authenticated (but not encrypted) data; Lamassu
    /// binds each metadata block to its object name and segment index through
    /// the AAD so blocks cannot be transplanted between segments unnoticed.
    pub fn encrypt_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let j0 = Self::j0(nonce);
        let mut ctr = j0;
        inc32(&mut ctr);
        self.ctr32(&ctr, data);

        self.compute_tag(&j0, aad, data)
    }

    /// Verifies the tag and decrypts `data` in place.
    ///
    /// On tag mismatch the buffer is left in its (still encrypted) input
    /// state and [`CryptoError::TagMismatch`] is returned.
    pub fn decrypt_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<()> {
        let j0 = Self::j0(nonce);
        let expected = self.compute_tag(&j0, aad, data);
        if !constant_time_eq(&expected, tag) {
            return Err(CryptoError::TagMismatch);
        }
        let mut ctr = j0;
        inc32(&mut ctr);
        self.ctr32(&ctr, data);
        Ok(())
    }

    /// Computes the GCM tag over (`aad`, ciphertext) with pre-counter `j0`.
    fn compute_tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut ghash = Ghash::with_key(&self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let s = ghash.finalize(aad.len(), ciphertext.len());

        let mut tag = s;
        self.ctr32(j0, &mut tag);
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::from_hex;

    fn key(s: &str) -> Key256 {
        from_hex(s).unwrap().try_into().unwrap()
    }

    fn nonce(s: &str) -> [u8; 12] {
        from_hex(s).unwrap().try_into().unwrap()
    }

    /// GCM spec (McGrew & Viega) Test Case 13: empty plaintext, empty AAD.
    #[test]
    fn gcm_test_case_13() {
        let gcm = Aes256Gcm::new(&[0u8; 32]);
        let mut data = Vec::new();
        let tag = gcm.encrypt_in_place(&[0u8; 12], &[], &mut data);
        assert_eq!(
            tag.to_vec(),
            from_hex("530f8afbc74536b9a963b4f1c4cb738b").unwrap()
        );
    }

    /// GCM spec Test Case 14: one zero block.
    #[test]
    fn gcm_test_case_14() {
        let gcm = Aes256Gcm::new(&[0u8; 32]);
        let mut data = vec![0u8; 16];
        let tag = gcm.encrypt_in_place(&[0u8; 12], &[], &mut data);
        assert_eq!(data, from_hex("cea7403d4d606b6e074ec5d3baf39d18").unwrap());
        assert_eq!(
            tag.to_vec(),
            from_hex("d0d1c8a799996bf0265b98b5d48ab919").unwrap()
        );
    }

    /// GCM spec Test Case 15: four blocks, no AAD.
    #[test]
    fn gcm_test_case_15() {
        let gcm = Aes256Gcm::new(&key(
            "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
        ));
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        )
        .unwrap();
        let mut data = pt.clone();
        let tag = gcm.encrypt_in_place(&nonce("cafebabefacedbaddecaf888"), &[], &mut data);
        assert_eq!(
            data,
            from_hex(
                "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
                 8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad"
            )
            .unwrap()
        );
        assert_eq!(
            tag.to_vec(),
            from_hex("b094dac5d93471bdec1a502270e3cc6c").unwrap()
        );
    }

    /// GCM spec Test Case 16: 60-byte plaintext with AAD.
    #[test]
    fn gcm_test_case_16() {
        let gcm = Aes256Gcm::new(&key(
            "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
        ));
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2").unwrap();
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        )
        .unwrap();
        let mut data = pt.clone();
        let n = nonce("cafebabefacedbaddecaf888");
        let tag = gcm.encrypt_in_place(&n, &aad, &mut data);
        assert_eq!(
            data,
            from_hex(
                "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
                 8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
            )
            .unwrap()
        );
        assert_eq!(
            tag.to_vec(),
            from_hex("76fc6ece0f4e1768cddf8853bb2d551b").unwrap()
        );

        // And the decryption path round-trips and authenticates.
        gcm.decrypt_in_place(&n, &aad, &mut data, &tag).unwrap();
        assert_eq!(data, pt);
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let gcm = Aes256Gcm::new(&[9u8; 32]);
        let n = [3u8; 12];
        let mut data = vec![0x11u8; 100];
        let tag = gcm.encrypt_in_place(&n, b"hdr", &mut data);
        data[50] ^= 1;
        let before = data.clone();
        let err = gcm.decrypt_in_place(&n, b"hdr", &mut data, &tag);
        assert_eq!(err, Err(CryptoError::TagMismatch));
        assert_eq!(data, before, "buffer must be untouched on failure");
    }

    #[test]
    fn tampered_aad_is_rejected() {
        let gcm = Aes256Gcm::new(&[9u8; 32]);
        let n = [3u8; 12];
        let mut data = vec![0x11u8; 32];
        let tag = gcm.encrypt_in_place(&n, b"segment-1", &mut data);
        assert_eq!(
            gcm.decrypt_in_place(&n, b"segment-2", &mut data, &tag),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn wrong_key_is_rejected() {
        let gcm = Aes256Gcm::new(&[1u8; 32]);
        let other = Aes256Gcm::new(&[2u8; 32]);
        let n = [0u8; 12];
        let mut data = vec![7u8; 48];
        let tag = gcm.encrypt_in_place(&n, &[], &mut data);
        assert_eq!(
            other.decrypt_in_place(&n, &[], &mut data, &tag),
            Err(CryptoError::TagMismatch)
        );
    }

    /// The spec-vector tests above run on the default (fixsliced) backend;
    /// this pins both backends to identical ciphertext and tags, and
    /// round-trips across them.
    #[test]
    fn backends_interoperate() {
        let k = key("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
        let fix = Aes256Gcm::with_backend(&k, CryptoBackend::Fixsliced);
        let tt = Aes256Gcm::with_backend(&k, CryptoBackend::TTable);
        let n = nonce("cafebabefacedbaddecaf888");
        for len in [0usize, 1, 15, 16, 17, 100, 4096] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            let mut a = plain.clone();
            let tag_fix = fix.encrypt_in_place(&n, b"aad", &mut a);
            let mut b = plain.clone();
            let tag_tt = tt.encrypt_in_place(&n, b"aad", &mut b);
            assert_eq!(a, b, "len {len}");
            assert_eq!(tag_fix, tag_tt, "len {len}");
            tt.decrypt_in_place(&n, b"aad", &mut a, &tag_fix).unwrap();
            assert_eq!(a, plain, "len {len}");
        }
    }

    #[test]
    fn random_nonces_randomize_ciphertext() {
        let gcm = Aes256Gcm::new(&[5u8; 32]);
        let mut a = vec![0xaau8; 64];
        let mut b = vec![0xaau8; 64];
        gcm.encrypt_in_place(&[1u8; 12], &[], &mut a);
        gcm.encrypt_in_place(&[2u8; 12], &[], &mut b);
        assert_ne!(a, b, "metadata encryption must not be convergent");
    }
}
