//! From-scratch cryptographic primitives for the Lamassu reproduction.
//!
//! The Lamassu paper (§2.2) relies on three primitives, all of which are
//! implemented here without external crypto crates so the reproduction is
//! fully self-contained:
//!
//! * [`sha256`] — the SHA-256 hash (FIPS 180-4), used to fingerprint plaintext
//!   data blocks before deriving a convergent key, and to fingerprint
//!   ciphertext blocks inside the deduplicating store simulator.
//! * [`aes`] — the AES-256 block cipher (FIPS 197), plus the block modes in
//!   [`cbc`], [`ctr`] and the authenticated [`gcm`] mode (SP 800-38A/D).
//! * [`kdf`] — the convergent key-derivation function
//!   `CEKey = AES256-ECB(H(block), K_in)` from Equation (1) of the paper.
//!
//! On top of the per-block primitives, [`batch`] provides span-granular
//! operations (derive/encrypt/decrypt over slices of blocks) fanned out
//! across a small scoped worker pool ([`pool`]), so the shims' span pipeline
//! parallelizes the convergent hashing and AES of a multi-block I/O.
//!
//! All implementations are validated against the official FIPS / NIST test
//! vectors in their module tests. The relative cost model (SHA-256
//! dominating the convergent write path) that the paper's Figure 9 analyses
//! is preserved.
//!
//! # Crypto kernels and backends
//!
//! Two AES implementations coexist, selected per mount by
//! [`CryptoBackend`]:
//!
//! * [`fixsliced`] (the default) — a bitsliced, *fixsliced* constant-time
//!   AES-256 kernel that processes [`fixsliced::WIDE_BLOCKS`] blocks per
//!   pass with zero secret-dependent table indexing or branches, paired
//!   with the four-lane interleaved SHA-256
//!   ([`sha256::digest_blocks_x4`]) for batched convergent key
//!   derivation;
//! * [`aes`] — the classic T-table implementation, retained as the
//!   **differential oracle** (the property tests replay every workload on
//!   both backends and require byte-identical stores) and as the fallback
//!   for runs too narrow to amortize a wide pass.
//!
//! The batch layer dispatches between them by run width (see
//! [`batch::WIDE_MIN_BLOCKS`]) and counts every dispatched block in
//! [`stats`], so the telemetry snapshot can report wide-vs-scalar rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod batch;
pub mod cbc;
pub mod ctr;
pub mod fixsliced;
pub mod gcm;
pub mod ghash;
pub mod kdf;
pub mod pool;
pub mod sha256;
pub mod util;

mod error;

pub use error::CryptoError;

/// Selects the AES/SHA kernel family used by the span layer and block modes.
///
/// The selection is made once per mount (via `SpanConfig` in the core crate
/// or `--crypto` on the CLI) and threaded through every span-granular
/// operation. Per-block reference APIs (`derive_keys`, `encrypt_blocks`,
/// ...) always use the T-table cipher: they are the scalar oracle the
/// differential tests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CryptoBackend {
    /// Wide fixsliced constant-time kernels (the default).
    ///
    /// Decryption and CTR keystream generation always take the wide path
    /// (they parallelize across blocks at any width); CBC encryption and
    /// key derivation take it when a span is wide enough to amortize a
    /// bitsliced pass (see [`batch::WIDE_MIN_BLOCKS`]), falling back to
    /// the T-table oracle below that width.
    #[default]
    Fixsliced,
    /// The T-table implementation for every operation.
    ///
    /// Not constant-time with respect to cache timing; retained as the
    /// differential oracle and for A/B benchmarking.
    TTable,
}

/// Global dispatch counters for the wide-vs-scalar crypto split.
///
/// The batch layer increments these on every span operation; the telemetry
/// snapshot reads them so `stats` / fig9 output can report how much of the
/// AES work actually ran through the wide constant-time kernel.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// AES blocks processed by the wide fixsliced kernel.
    pub static WIDE_BLOCKS: AtomicU64 = AtomicU64::new(0);
    /// AES blocks processed by the scalar T-table fallback.
    pub static SCALAR_BLOCKS: AtomicU64 = AtomicU64::new(0);
    /// Convergent keys derived through the 4-lane SHA-256 + wide-ECB path.
    pub static WIDE_DERIVES: AtomicU64 = AtomicU64::new(0);
    /// Convergent keys derived through the scalar path.
    pub static SCALAR_DERIVES: AtomicU64 = AtomicU64::new(0);

    /// Record `n` AES blocks dispatched to the wide kernel.
    pub fn count_wide_blocks(n: usize) {
        WIDE_BLOCKS.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record `n` AES blocks dispatched to the scalar fallback.
    pub fn count_scalar_blocks(n: usize) {
        SCALAR_BLOCKS.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record `n` key derivations on the multi-lane path.
    pub fn count_wide_derives(n: usize) {
        WIDE_DERIVES.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record `n` key derivations on the scalar path.
    pub fn count_scalar_derives(n: usize) {
        SCALAR_DERIVES.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Snapshot of the four counters, in the order
    /// `(wide_blocks, scalar_blocks, wide_derives, scalar_derives)`.
    pub fn snapshot() -> (u64, u64, u64, u64) {
        (
            WIDE_BLOCKS.load(Ordering::Relaxed),
            SCALAR_BLOCKS.load(Ordering::Relaxed),
            WIDE_DERIVES.load(Ordering::Relaxed),
            SCALAR_DERIVES.load(Ordering::Relaxed),
        )
    }
}

/// A 256-bit symmetric key (AES-256 key or SHA-256 digest used as a key).
pub type Key256 = [u8; 32];

/// A 128-bit initialization vector / block.
pub type Iv128 = [u8; 16];

/// The fixed initialization vector used for convergent (deterministic) CBC
/// encryption of data blocks, per §2.2 of the paper.
///
/// Convergent encryption must be deterministic so that identical plaintext
/// blocks produce identical ciphertext blocks; a fixed IV is what previous
/// convergent systems (Douceur et al.) use and what Lamassu adopts.
pub const FIXED_IV: Iv128 = [
    0x4c, 0x61, 0x6d, 0x61, 0x73, 0x73, 0x75, 0x20, 0x46, 0x49, 0x58, 0x45, 0x44, 0x20, 0x49, 0x56,
];

/// Result alias for fallible crypto operations.
pub type Result<T> = std::result::Result<T, CryptoError>;
