//! From-scratch cryptographic primitives for the Lamassu reproduction.
//!
//! The Lamassu paper (§2.2) relies on three primitives, all of which are
//! implemented here without external crypto crates so the reproduction is
//! fully self-contained:
//!
//! * [`sha256`] — the SHA-256 hash (FIPS 180-4), used to fingerprint plaintext
//!   data blocks before deriving a convergent key, and to fingerprint
//!   ciphertext blocks inside the deduplicating store simulator.
//! * [`aes`] — the AES-256 block cipher (FIPS 197), plus the block modes in
//!   [`cbc`], [`ctr`] and the authenticated [`gcm`] mode (SP 800-38A/D).
//! * [`kdf`] — the convergent key-derivation function
//!   `CEKey = AES256-ECB(H(block), K_in)` from Equation (1) of the paper.
//!
//! On top of the per-block primitives, [`batch`] provides span-granular
//! operations (derive/encrypt/decrypt over slices of blocks) fanned out
//! across a small scoped worker pool ([`pool`]), so the shims' span pipeline
//! parallelizes the convergent hashing and AES of a multi-block I/O.
//!
//! All implementations are validated against the official FIPS / NIST test
//! vectors in their module tests. They favour clarity and portability over
//! raw speed; the relative cost model (SHA-256 dominating the convergent
//! write path) that the paper's Figure 9 analyses is preserved.
//!
//! # Security note
//!
//! These are table-based, non-hardened software implementations written for a
//! systems-research reproduction. They are **not** constant-time with respect
//! to cache timing and must not be used to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod batch;
pub mod cbc;
pub mod ctr;
pub mod gcm;
pub mod ghash;
pub mod kdf;
pub mod pool;
pub mod sha256;
pub mod util;

mod error;

pub use error::CryptoError;

/// A 256-bit symmetric key (AES-256 key or SHA-256 digest used as a key).
pub type Key256 = [u8; 32];

/// A 128-bit initialization vector / block.
pub type Iv128 = [u8; 16];

/// The fixed initialization vector used for convergent (deterministic) CBC
/// encryption of data blocks, per §2.2 of the paper.
///
/// Convergent encryption must be deterministic so that identical plaintext
/// blocks produce identical ciphertext blocks; a fixed IV is what previous
/// convergent systems (Douceur et al.) use and what Lamassu adopts.
pub const FIXED_IV: Iv128 = [
    0x4c, 0x61, 0x6d, 0x61, 0x73, 0x73, 0x75, 0x20, 0x46, 0x49, 0x58, 0x45, 0x44, 0x20, 0x49, 0x56,
];

/// Result alias for fallible crypto operations.
pub type Result<T> = std::result::Result<T, CryptoError>;
