//! Small helpers: hex encoding, constant-time comparison, XOR.

/// Encodes `bytes` as a lowercase hex string.
///
/// # Examples
///
/// ```
/// assert_eq!(lamassu_crypto::util::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a hex string into bytes, returning `None` on malformed input.
///
/// # Examples
///
/// ```
/// assert_eq!(lamassu_crypto::util::from_hex("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(lamassu_crypto::util::from_hex("xyz"), None);
/// ```
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// Compares two byte slices in constant time (with respect to content).
///
/// Used when verifying AES-GCM authentication tags so that a prefix-match
/// timing oracle cannot be built against the metadata integrity check.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// XORs `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn from_hex_rejects_odd_length() {
        assert_eq!(from_hex("abc"), None);
    }

    #[test]
    fn from_hex_rejects_non_hex() {
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn xor_in_place_is_involution() {
        let mut a = vec![1u8, 2, 3, 4];
        let b = vec![9u8, 8, 7, 6];
        let orig = a.clone();
        xor_in_place(&mut a, &b);
        xor_in_place(&mut a, &b);
        assert_eq!(a, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_in_place_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        xor_in_place(&mut a, &[0u8; 4]);
    }
}
