//! Convergent key derivation (Equation 1 of the paper).
//!
//! `CEKey_i = F(H(Block_i), K_in)` where `H` is SHA-256 and `F` is a key
//! derivation function keyed by the secret *inner key*. Following the paper's
//! prototype, `F` is AES-256-ECB encryption of the 32-byte block hash under
//! the inner key: the hash is split into two 16-byte halves, each encrypted
//! independently. Because the inner key is secret, an attacker mounting the
//! chosen-plaintext ("confirmation-of-file") attack must guess both the
//! plaintext *and* the inner key; at the same time the derivation stays
//! deterministic, so convergence — and therefore deduplication — within an
//! isolation zone is preserved.

use crate::aes::{ecb_decrypt_in_place, ecb_encrypt_in_place, Aes256};
use crate::sha256::{digest_block, Digest};
use crate::Key256;

/// Derives convergent encryption keys from block hashes under an inner key.
///
/// One `ConvergentKdf` is created per mounted Lamassu instance and reused for
/// every block, so the AES key schedule for the inner key is expanded once.
///
/// # Examples
///
/// ```
/// use lamassu_crypto::kdf::ConvergentKdf;
///
/// let kdf = ConvergentKdf::new(&[0x11u8; 32]);
/// let block = vec![0u8; 4096];
/// let k1 = kdf.derive_for_block(&block);
/// let k2 = kdf.derive_for_block(&block);
/// assert_eq!(k1, k2, "derivation must be deterministic");
/// ```
#[derive(Clone)]
pub struct ConvergentKdf {
    inner: Aes256,
}

impl ConvergentKdf {
    /// Creates a KDF bound to the given inner key `K_in`.
    pub fn new(inner_key: &Key256) -> Self {
        ConvergentKdf {
            inner: Aes256::new(inner_key),
        }
    }

    /// Derives the convergent key for a plaintext block hash.
    pub fn derive(&self, block_hash: &Digest) -> Key256 {
        let mut key = *block_hash;
        ecb_encrypt_in_place(&self.inner, &mut key);
        key
    }

    /// Convenience: hashes `block` with SHA-256 and derives its key. Routed
    /// through [`digest_block`], the one-shot fast path for the whole-block
    /// (4 KiB) messages this is called with on every data-path operation.
    pub fn derive_for_block(&self, block: &[u8]) -> Key256 {
        self.derive(&digest_block(block))
    }

    /// Recovers the block hash from a convergent key (the KDF is invertible
    /// for holders of the inner key). Used by the integrity self-check to
    /// compare a stored key against the hash of freshly decrypted data
    /// without re-deriving through the forward direction.
    pub fn invert(&self, key: &Key256) -> Digest {
        let mut hash = *key;
        ecb_decrypt_in_place(&self.inner, &mut hash);
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn deterministic_for_same_block_and_key() {
        let kdf = ConvergentKdf::new(&[1u8; 32]);
        let block = vec![0x5au8; 4096];
        assert_eq!(kdf.derive_for_block(&block), kdf.derive_for_block(&block));
    }

    #[test]
    fn different_inner_keys_give_different_cekeys() {
        let block = vec![0x5au8; 4096];
        let a = ConvergentKdf::new(&[1u8; 32]).derive_for_block(&block);
        let b = ConvergentKdf::new(&[2u8; 32]).derive_for_block(&block);
        assert_ne!(a, b, "inner key defines the deduplication domain");
    }

    #[test]
    fn different_blocks_give_different_cekeys() {
        let kdf = ConvergentKdf::new(&[1u8; 32]);
        let a = kdf.derive_for_block(&vec![0u8; 4096]);
        let b = kdf.derive_for_block(&vec![1u8; 4096]);
        assert_ne!(a, b);
    }

    #[test]
    fn invert_round_trips() {
        let kdf = ConvergentKdf::new(&[0xabu8; 32]);
        let hash = sha256(b"some block contents");
        let key = kdf.derive(&hash);
        assert_eq!(kdf.invert(&key), hash);
    }

    #[test]
    fn derive_differs_from_raw_hash() {
        // With a non-zero inner key the CE key must not equal the bare hash,
        // otherwise the chosen-plaintext defence is void.
        let kdf = ConvergentKdf::new(&[0x77u8; 32]);
        let hash = sha256(b"block");
        assert_ne!(kdf.derive(&hash), hash);
    }
}
