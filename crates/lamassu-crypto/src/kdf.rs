//! Convergent key derivation (Equation 1 of the paper).
//!
//! `CEKey_i = F(H(Block_i), K_in)` where `H` is SHA-256 and `F` is a key
//! derivation function keyed by the secret *inner key*. Following the paper's
//! prototype, `F` is AES-256-ECB encryption of the 32-byte block hash under
//! the inner key: the hash is split into two 16-byte halves, each encrypted
//! independently. Because the inner key is secret, an attacker mounting the
//! chosen-plaintext ("confirmation-of-file") attack must guess both the
//! plaintext *and* the inner key; at the same time the derivation stays
//! deterministic, so convergence — and therefore deduplication — within an
//! isolation zone is preserved.

use crate::aes::{ecb_decrypt_in_place, ecb_encrypt_in_place, Aes256};
use crate::fixsliced::{self, Aes256Fix};
use crate::sha256::{digest_block, digest_blocks_x4, Digest, SHA_LANES};
use crate::Key256;

/// Derives convergent encryption keys from block hashes under an inner key.
///
/// One `ConvergentKdf` is created per mounted Lamassu instance and reused for
/// every block, so the AES key schedule for the inner key is expanded once.
///
/// # Examples
///
/// ```
/// use lamassu_crypto::kdf::ConvergentKdf;
///
/// let kdf = ConvergentKdf::new(&[0x11u8; 32]);
/// let block = vec![0u8; 4096];
/// let k1 = kdf.derive_for_block(&block);
/// let k2 = kdf.derive_for_block(&block);
/// assert_eq!(k1, k2, "derivation must be deterministic");
/// ```
#[derive(Clone)]
pub struct ConvergentKdf {
    inner: Aes256,
    inner_fix: Aes256Fix,
}

impl ConvergentKdf {
    /// Creates a KDF bound to the given inner key `K_in`.
    pub fn new(inner_key: &Key256) -> Self {
        ConvergentKdf {
            inner: Aes256::new(inner_key),
            inner_fix: Aes256Fix::new(inner_key),
        }
    }

    /// Derives the convergent key for a plaintext block hash.
    pub fn derive(&self, block_hash: &Digest) -> Key256 {
        let mut key = *block_hash;
        ecb_encrypt_in_place(&self.inner, &mut key);
        key
    }

    /// Convenience: hashes `block` with SHA-256 and derives its key. Routed
    /// through [`digest_block`], the one-shot fast path for the whole-block
    /// (4 KiB) messages this is called with on every data-path operation.
    pub fn derive_for_block(&self, block: &[u8]) -> Key256 {
        self.derive(&digest_block(block))
    }

    /// Like [`derive`](Self::derive), but routed through the fixsliced
    /// constant-time cipher instead of the T-table oracle. Produces the
    /// identical key; used for sub-batch tails on the wide span path so the
    /// default backend never touches a secret-indexed table.
    pub fn derive_ct(&self, block_hash: &Digest) -> Key256 {
        let mut key = *block_hash;
        fixsliced::ecb_encrypt(&self.inner_fix, &mut key);
        key
    }

    /// Constant-time variant of [`derive_for_block`](Self::derive_for_block).
    pub fn derive_for_block_ct(&self, block: &[u8]) -> Key256 {
        self.derive_ct(&digest_block(block))
    }

    /// Derives convergent keys for four equal-length blocks in one pass.
    ///
    /// The hashes come from the 4-lane interleaved SHA-256
    /// ([`digest_blocks_x4`]) and the keying `F` runs as a single wide
    /// fixsliced ECB pass over all eight 16-byte digest halves, so the whole
    /// derivation is constant-time and amortizes the kernel width. Output is
    /// bit-identical to four scalar [`derive_for_block`](Self::derive_for_block)
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if the four blocks are not the same length (the span layer
    /// only batches uniform whole blocks).
    pub fn derive_x4(&self, blocks: [&[u8]; SHA_LANES]) -> [Key256; SHA_LANES] {
        let digests = digest_blocks_x4(blocks);
        let mut buf = [0u8; 32 * SHA_LANES];
        for (i, d) in digests.iter().enumerate() {
            buf[i * 32..(i + 1) * 32].copy_from_slice(d);
        }
        fixsliced::ecb_encrypt(&self.inner_fix, &mut buf);
        std::array::from_fn(|i| {
            let mut key = [0u8; 32];
            key.copy_from_slice(&buf[i * 32..(i + 1) * 32]);
            key
        })
    }

    /// Recovers the block hash from a convergent key (the KDF is invertible
    /// for holders of the inner key). Used by the integrity self-check to
    /// compare a stored key against the hash of freshly decrypted data
    /// without re-deriving through the forward direction.
    pub fn invert(&self, key: &Key256) -> Digest {
        let mut hash = *key;
        ecb_decrypt_in_place(&self.inner, &mut hash);
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn deterministic_for_same_block_and_key() {
        let kdf = ConvergentKdf::new(&[1u8; 32]);
        let block = vec![0x5au8; 4096];
        assert_eq!(kdf.derive_for_block(&block), kdf.derive_for_block(&block));
    }

    #[test]
    fn different_inner_keys_give_different_cekeys() {
        let block = vec![0x5au8; 4096];
        let a = ConvergentKdf::new(&[1u8; 32]).derive_for_block(&block);
        let b = ConvergentKdf::new(&[2u8; 32]).derive_for_block(&block);
        assert_ne!(a, b, "inner key defines the deduplication domain");
    }

    #[test]
    fn different_blocks_give_different_cekeys() {
        let kdf = ConvergentKdf::new(&[1u8; 32]);
        let a = kdf.derive_for_block(&vec![0u8; 4096]);
        let b = kdf.derive_for_block(&vec![1u8; 4096]);
        assert_ne!(a, b);
    }

    #[test]
    fn invert_round_trips() {
        let kdf = ConvergentKdf::new(&[0xabu8; 32]);
        let hash = sha256(b"some block contents");
        let key = kdf.derive(&hash);
        assert_eq!(kdf.invert(&key), hash);
    }

    #[test]
    fn derive_ct_matches_ttable_derive() {
        let kdf = ConvergentKdf::new(&[0x42u8; 32]);
        for i in 0..16u8 {
            let hash = sha256(&[i; 100]);
            assert_eq!(kdf.derive_ct(&hash), kdf.derive(&hash));
        }
    }

    #[test]
    fn derive_x4_matches_scalar_lanes() {
        let kdf = ConvergentKdf::new(&[0x99u8; 32]);
        let blocks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i.wrapping_mul(37); 4096]).collect();
        let wide = kdf.derive_x4([&blocks[0], &blocks[1], &blocks[2], &blocks[3]]);
        for lane in 0..4 {
            assert_eq!(
                wide[lane],
                kdf.derive_for_block(&blocks[lane]),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn derive_differs_from_raw_hash() {
        // With a non-zero inner key the CE key must not equal the bare hash,
        // otherwise the chosen-plaintext defence is void.
        let kdf = ConvergentKdf::new(&[0x77u8; 32]);
        let hash = sha256(b"block");
        assert_ne!(kdf.derive(&hash), hash);
    }
}
