//! AES-256 counter (CTR) mode keystream, used internally by GCM.
//!
//! GCM encrypts with a 32-bit incrementing counter appended to the 96-bit IV
//! (SP 800-38D §6.5). The helper here exposes exactly that flavour of CTR so
//! [`crate::gcm`] can reuse it; it is also validated on its own against the
//! SP 800-38A CTR vectors (which use a full 128-bit counter — covered by a
//! dedicated test that increments the whole block).

use crate::aes::Aes256;
use crate::util::xor_in_place;

/// Increments the last 32 bits of a 16-byte counter block (big-endian),
/// wrapping modulo 2^32, as specified for GCM's `inc32` function.
pub fn inc32(block: &mut [u8; 16]) {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

/// XORs the GCM-style CTR keystream (starting at counter block `j`) into
/// `data` in place. The final partial block of keystream is truncated.
pub fn ctr32_xor_in_place(aes: &Aes256, j: &[u8; 16], data: &mut [u8]) {
    let mut counter = *j;
    for chunk in data.chunks_mut(16) {
        let keystream = aes.encrypt_block(&counter);
        xor_in_place(chunk, &keystream[..chunk.len()]);
        inc32(&mut counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::from_hex;

    #[test]
    fn inc32_wraps() {
        let mut b = [0u8; 16];
        b[12..16].copy_from_slice(&0xffff_ffffu32.to_be_bytes());
        b[0] = 0xaa;
        inc32(&mut b);
        assert_eq!(&b[12..16], &[0, 0, 0, 0]);
        assert_eq!(b[0], 0xaa, "upper 96 bits must be untouched");
    }

    #[test]
    fn inc32_simple() {
        let mut b = [0u8; 16];
        inc32(&mut b);
        assert_eq!(b[15], 1);
        inc32(&mut b);
        assert_eq!(b[15], 2);
    }

    #[test]
    fn ctr_keystream_round_trip() {
        let key = [0x42u8; 32];
        let aes = Aes256::new(&key);
        let j = [7u8; 16];
        let pt: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut buf = pt.clone();
        ctr32_xor_in_place(&aes, &j, &mut buf);
        assert_ne!(buf, pt);
        ctr32_xor_in_place(&aes, &j, &mut buf);
        assert_eq!(buf, pt);
    }

    #[test]
    fn ctr_partial_block() {
        let aes = Aes256::new(&[1u8; 32]);
        let j = [0u8; 16];
        let mut short = vec![0xffu8; 5];
        let mut long = vec![0xffu8; 21];
        ctr32_xor_in_place(&aes, &j, &mut short);
        ctr32_xor_in_place(&aes, &j, &mut long);
        // The first 5 bytes of keystream must be identical regardless of length.
        assert_eq!(short, long[..5]);
    }

    #[test]
    fn sp800_38a_ctr_aes256_first_block() {
        // NIST SP 800-38A F.5.5 CTR-AES256.Encrypt, first block only: the
        // initial counter is f0f1...ff and only the low 32 bits change within
        // one block, so the GCM-style inc32 variant agrees on block 1.
        let key: [u8; 32] =
            from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .unwrap()
                .try_into()
                .unwrap();
        let ctr: [u8; 16] = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .unwrap()
            .try_into()
            .unwrap();
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let expect = from_hex("601ec313775789a5b7a7f504bbf3d228").unwrap();
        let aes = Aes256::new(&key);
        let mut buf = pt;
        ctr32_xor_in_place(&aes, &ctr, &mut buf);
        assert_eq!(buf, expect);
    }
}
