//! Per-operation trace spans with preallocated ring buffers.
//!
//! A [`Tracer`] records one fixed-size [`TraceRecord`] per file-system
//! operation: the op kind, a truncated file tag, byte count, total wall
//! latency, and the per-phase child timings (plan/crypto/backend/route —
//! the same seven phases as the Figure 9 categories, see [`PHASE_NAMES`]).
//! Records land in per-thread-sharded ring buffers whose slots are
//! preallocated at construction, so the record path is: one `Instant` read,
//! a thread-local phase-accumulator drain, one uncontended sharded mutex,
//! and a handful of atomics — **no heap allocation**, preserving the
//! zero-allocation steady-state guarantee of `tests/zero_alloc.rs`.
//!
//! Phase attribution works through a thread-local frame: [`Tracer::op`]
//! opens the frame, the shims' `Profiler::add` calls [`phase_add`] as they
//! charge categories, and the [`OpGuard`]'s drop drains the frame into the
//! record. Any operation slower than the configurable threshold
//! ([`TraceConfig::slow_threshold`]) is additionally retained in a
//! dedicated slow-op ring that fast traffic cannot evict.

use crate::hist::Histogram;
use crate::registry::{Counter, Registry};
use crate::snapshot::Snapshot;
use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::cell::RefCell;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of child-span phases per operation — one per Figure 9 category
/// (plus the submit-to-completion queue-wait phase of the async engine).
pub const NUM_PHASES: usize = 8;

/// Phase names, index-aligned with `lamassu-core::Category` (the profiler
/// charges `Category as usize`, the tracer stores `phases_ns[same index]`).
pub const PHASE_NAMES: [&str; NUM_PHASES] = [
    "encrypt",
    "decrypt",
    "get_ce_key",
    "io",
    "cache",
    "plan",
    "route",
    "queue",
];

/// Bytes of the file path retained in a trace record.
const FILE_TAG_LEN: usize = 40;

/// Ring shards (mirrors the block pool's thread sharding).
const RING_SHARDS: usize = 8;

/// The operation kinds the shims trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpKind {
    /// A read of file bytes.
    Read,
    /// A write of file bytes.
    Write,
    /// A durability barrier.
    Fsync,
    /// A truncation.
    Truncate,
    /// Anything else (create/remove/rename/metadata).
    #[default]
    Other,
}

/// Number of [`OpKind`] variants.
const NUM_OPS: usize = 5;

impl OpKind {
    /// Stable lowercase label (used in metric names and exports).
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Truncate => "truncate",
            OpKind::Other => "other",
        }
    }
}

/// One completed operation, fixed-size and `Copy` so ring slots never
/// allocate.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Global completion order (monotone per tracer).
    pub seq: u64,
    /// What the operation was.
    pub op: OpKind,
    /// Leading bytes of the file path (see [`TraceRecord::file`]).
    pub file_tag: [u8; FILE_TAG_LEN],
    /// Number of valid bytes in `file_tag`.
    pub file_len: u8,
    /// Payload bytes moved (0 for fsync/truncate).
    pub bytes: u64,
    /// End-to-end wall time in nanoseconds.
    pub total_ns: u64,
    /// Child-span time per phase, indexed like [`PHASE_NAMES`].
    pub phases_ns: [u64; NUM_PHASES],
}

impl Default for TraceRecord {
    fn default() -> Self {
        TraceRecord {
            seq: 0,
            op: OpKind::Other,
            file_tag: [0; FILE_TAG_LEN],
            file_len: 0,
            bytes: 0,
            total_ns: 0,
            phases_ns: [0; NUM_PHASES],
        }
    }
}

impl TraceRecord {
    /// The retained file tag as text (paths longer than the tag are
    /// truncated).
    pub fn file(&self) -> &str {
        std::str::from_utf8(&self.file_tag[..self.file_len as usize]).unwrap_or("")
    }
}

impl Serialize for TraceRecord {
    fn to_value(&self) -> Value {
        let phases: Vec<(String, Value)> = PHASE_NAMES
            .iter()
            .zip(self.phases_ns.iter())
            .filter(|(_, &ns)| ns > 0)
            .map(|(name, &ns)| (name.to_string(), Value::U64(ns)))
            .collect();
        Value::Object(vec![
            ("seq".into(), Value::U64(self.seq)),
            ("op".into(), Value::Str(self.op.label().into())),
            ("file".into(), Value::Str(self.file().into())),
            ("bytes".into(), Value::U64(self.bytes)),
            ("total_ns".into(), Value::U64(self.total_ns)),
            ("phases_ns".into(), Value::Object(phases)),
        ])
    }
}

/// Tracer sizing and thresholds.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Total recent-op ring capacity, split across the thread shards
    /// (rounded up to a whole number per shard).
    pub ring_capacity: usize,
    /// Slow-op ring capacity.
    pub slow_capacity: usize,
    /// Ops at least this slow are retained in the slow-op ring.
    pub slow_threshold: Duration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 512,
            slow_capacity: 128,
            slow_threshold: Duration::from_millis(10),
        }
    }
}

/// A fixed-capacity overwrite-oldest ring of trace records. Slots are
/// preallocated; push is an index write.
struct Ring {
    slots: Vec<TraceRecord>,
    next: usize,
    filled: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: vec![TraceRecord::default(); capacity.max(1)],
            next: 0,
            filled: 0,
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        self.slots[self.next] = rec;
        self.next = (self.next + 1) % self.slots.len();
        self.filled = (self.filled + 1).min(self.slots.len());
    }

    fn drain_into(&self, out: &mut Vec<TraceRecord>) {
        out.extend_from_slice(&self.slots[..self.filled]);
    }
}

/// The per-op phase accumulator: opened by [`Tracer::op`], fed by
/// [`phase_add`], drained by the guard's drop. One frame per thread — a
/// nested op (a shim calling back into itself) records nothing rather than
/// stealing the outer op's phases.
struct Frame {
    depth: u32,
    phases_ns: [u64; NUM_PHASES],
}

thread_local! {
    static FRAME: RefCell<Frame> = const {
        RefCell::new(Frame { depth: 0, phases_ns: [0; NUM_PHASES] })
    };
}

/// Charges `ns` to phase `index` (a `lamassu-core::Category as usize`) of
/// the operation currently open **on this thread**. A no-op outside an op
/// — callers (the profilers) charge unconditionally and cheaply.
#[inline]
pub fn phase_add(index: usize, ns: u64) {
    FRAME.with(|f| {
        if let Ok(mut frame) = f.try_borrow_mut() {
            if frame.depth > 0 && index < NUM_PHASES {
                frame.phases_ns[index] += ns;
            }
        }
    });
}

/// The calling thread's ring shard, hashed from its thread id once and
/// cached (the same spreading scheme as the block pool's shards).
fn thread_shard_index() -> usize {
    thread_local! {
        /// Shard + 1; 0 means "not yet computed".
        static HOME: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    }
    HOME.with(|c| {
        let cached = c.get();
        if cached != 0 {
            return cached - 1;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let idx = h.finish() as usize % RING_SHARDS;
        c.set(idx + 1);
        idx
    })
}

struct TracerInner {
    rings: Vec<Mutex<Ring>>,
    slow: Mutex<Ring>,
    slow_threshold_ns: AtomicU64,
    seq: AtomicU64,
    ops: Counter,
    slow_ops: Counter,
    dropped_nested: Counter,
    op_hists: [Histogram; NUM_OPS],
}

/// The per-mount operation tracer (see the module docs). Cloning is cheap
/// and shares the same rings.
///
/// # Examples
///
/// ```
/// use lamassu_telemetry::{OpKind, Registry, TraceConfig, Tracer};
///
/// let reg = Registry::new();
/// let tracer = Tracer::new(&reg, TraceConfig::default());
/// {
///     let _op = tracer.op(OpKind::Read, "/data/a", 4096);
///     // ... the operation runs; Profiler::add feeds the phase spans ...
/// }
/// assert_eq!(tracer.recent().len(), 1);
/// assert_eq!(reg.counter("trace.ops").get(), 1);
/// ```
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Builds a tracer, preallocating every ring slot and registering its
    /// counters (`trace.ops`, `trace.slow_ops`, `trace.dropped_nested`) and
    /// per-op-kind latency histograms (`op.read_ns`, …) in `registry`.
    pub fn new(registry: &Registry, config: TraceConfig) -> Arc<Self> {
        let shard_cap = config.ring_capacity.div_ceil(RING_SHARDS).max(1);
        let op_hists = [
            registry.histogram("op.read_ns"),
            registry.histogram("op.write_ns"),
            registry.histogram("op.fsync_ns"),
            registry.histogram("op.truncate_ns"),
            registry.histogram("op.other_ns"),
        ];
        Arc::new(Tracer {
            inner: Arc::new(TracerInner {
                rings: (0..RING_SHARDS)
                    .map(|_| Mutex::new(Ring::new(shard_cap)))
                    .collect(),
                slow: Mutex::new(Ring::new(config.slow_capacity.max(1))),
                slow_threshold_ns: AtomicU64::new(
                    config.slow_threshold.as_nanos().min(u64::MAX as u128) as u64,
                ),
                seq: AtomicU64::new(0),
                ops: registry.counter("trace.ops"),
                slow_ops: registry.counter("trace.slow_ops"),
                dropped_nested: registry.counter("trace.dropped_nested"),
                op_hists,
            }),
        })
    }

    /// Opens a span for one operation; the returned guard records it when
    /// dropped. Allocation-free: the file tag is copied into a fixed
    /// buffer. A nested call on the same thread returns an inert guard
    /// (counted in `trace.dropped_nested`) so phase attribution stays with
    /// the outermost op.
    #[inline]
    pub fn op(&self, kind: OpKind, file: &str, bytes: u64) -> OpGuard<'_> {
        let owns = FRAME.with(|f| match f.try_borrow_mut() {
            Ok(mut frame) => {
                frame.depth += 1;
                if frame.depth == 1 {
                    frame.phases_ns = [0; NUM_PHASES];
                    true
                } else {
                    false
                }
            }
            Err(_) => false,
        });
        let mut file_tag = [0u8; FILE_TAG_LEN];
        let take = file.len().min(FILE_TAG_LEN);
        // Cut at a char boundary so the tag stays valid UTF-8.
        let take = (0..=take)
            .rev()
            .find(|&i| file.is_char_boundary(i))
            .unwrap_or(0);
        file_tag[..take].copy_from_slice(&file.as_bytes()[..take]);
        OpGuard {
            tracer: &self.inner,
            kind,
            file_tag,
            file_len: take as u8,
            bytes,
            owns,
            start: Instant::now(),
        }
    }

    /// Changes the slow-op retention threshold at runtime.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.inner.slow_threshold_ns.store(
            threshold.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// The current slow-op retention threshold.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_nanos(self.inner.slow_threshold_ns.load(Ordering::Relaxed))
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.inner.ops.get()
    }

    /// The retained recent records across all thread shards, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for ring in &self.inner.rings {
            ring.lock().drain_into(&mut out);
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The retained slow operations, oldest first.
    pub fn slow(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        self.inner.slow.lock().drain_into(&mut out);
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Latency histogram snapshot for one op kind.
    pub fn op_histogram(&self, kind: OpKind) -> crate::hist::HistSnapshot {
        self.inner.op_hists[kind as usize].snapshot()
    }

    /// Dumps the trace state (threshold, retained slow ops, the tail of the
    /// recent ring) into `snap` under `section`. Counters and op
    /// histograms live in the [`Registry`] the tracer was built with —
    /// export that too for the full picture.
    pub fn export(&self, snap: &mut Snapshot, section: &str) {
        let slow: Vec<Value> = self.slow().iter().map(Serialize::to_value).collect();
        let recent = self.recent();
        let tail: Vec<Value> = recent
            .iter()
            .rev()
            .take(16)
            .rev()
            .map(Serialize::to_value)
            .collect();
        snap.section_value(
            section,
            Value::Object(vec![
                ("ops".into(), Value::U64(self.ops())),
                (
                    "slow_threshold_ns".into(),
                    Value::U64(self.inner.slow_threshold_ns.load(Ordering::Relaxed)),
                ),
                ("slow".into(), Value::Array(slow)),
                ("recent".into(), Value::Array(tail)),
            ]),
        );
    }
}

/// Open span for one in-flight operation; records on drop (see
/// [`Tracer::op`]).
pub struct OpGuard<'a> {
    tracer: &'a TracerInner,
    kind: OpKind,
    file_tag: [u8; FILE_TAG_LEN],
    file_len: u8,
    bytes: u64,
    /// True when this guard opened the thread's frame (outermost op).
    owns: bool,
    start: Instant,
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        let total_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let phases_ns = FRAME.with(|f| match f.try_borrow_mut() {
            Ok(mut frame) => {
                frame.depth = frame.depth.saturating_sub(1);
                if self.owns {
                    std::mem::take(&mut frame.phases_ns)
                } else {
                    [0; NUM_PHASES]
                }
            }
            Err(_) => [0; NUM_PHASES],
        });
        if !self.owns {
            self.tracer.dropped_nested.inc();
            return;
        }
        let rec = TraceRecord {
            seq: self.tracer.seq.fetch_add(1, Ordering::Relaxed),
            op: self.kind,
            file_tag: self.file_tag,
            file_len: self.file_len,
            bytes: self.bytes,
            total_ns,
            phases_ns,
        };
        self.tracer.rings[thread_shard_index()].lock().push(rec);
        self.tracer.op_hists[self.kind as usize].record(total_ns);
        self.tracer.ops.inc();
        if total_ns >= self.tracer.slow_threshold_ns.load(Ordering::Relaxed) {
            self.tracer.slow.lock().push(rec);
            self.tracer.slow_ops.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> (Registry, Arc<Tracer>) {
        let reg = Registry::new();
        let t = Tracer::new(&reg, TraceConfig::default());
        (reg, t)
    }

    #[test]
    fn guard_records_op_and_histogram() {
        let (reg, t) = tracer();
        {
            let _op = t.op(OpKind::Write, "/a/b", 8192);
        }
        let recs = t.recent();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].op, OpKind::Write);
        assert_eq!(recs[0].file(), "/a/b");
        assert_eq!(recs[0].bytes, 8192);
        assert_eq!(t.op_histogram(OpKind::Write).count, 1);
        assert_eq!(reg.counter("trace.ops").get(), 1);
    }

    #[test]
    fn phases_attach_to_the_open_op() {
        let (_reg, t) = tracer();
        {
            let _op = t.op(OpKind::Read, "/f", 1);
            phase_add(3, 1_000); // io
            phase_add(3, 500);
            phase_add(6, 42); // route
        }
        let rec = t.recent()[0];
        assert_eq!(rec.phases_ns[3], 1_500);
        assert_eq!(rec.phases_ns[6], 42);
        assert_eq!(rec.phases_ns[0], 0);
    }

    #[test]
    fn phase_add_outside_an_op_is_inert() {
        let (_reg, t) = tracer();
        phase_add(0, 999);
        {
            let _op = t.op(OpKind::Read, "/f", 1);
        }
        assert_eq!(t.recent()[0].phases_ns[0], 0);
    }

    #[test]
    fn nested_ops_do_not_steal_phases() {
        let (reg, t) = tracer();
        {
            let _outer = t.op(OpKind::Read, "/outer", 10);
            phase_add(5, 7);
            {
                let _inner = t.op(OpKind::Other, "/inner", 0);
                phase_add(5, 3);
            }
            phase_add(5, 1);
        }
        let recs = t.recent();
        assert_eq!(recs.len(), 1, "inner op must be dropped");
        assert_eq!(recs[0].file(), "/outer");
        assert_eq!(recs[0].phases_ns[5], 11, "all phases go to the outer op");
        assert_eq!(reg.counter("trace.dropped_nested").get(), 1);
    }

    #[test]
    fn slow_ops_are_retained_separately() {
        let (reg, t) = tracer();
        t.set_slow_threshold(Duration::ZERO); // everything is "slow"
        {
            let _op = t.op(OpKind::Fsync, "/s", 0);
        }
        t.set_slow_threshold(Duration::from_secs(3600));
        {
            let _op = t.op(OpKind::Fsync, "/fast", 0);
        }
        let slow = t.slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].file(), "/s");
        assert_eq!(reg.counter("trace.slow_ops").get(), 1);
        assert_eq!(t.recent().len(), 2);
    }

    #[test]
    fn rings_overwrite_oldest() {
        let reg = Registry::new();
        let t = Tracer::new(
            &reg,
            TraceConfig {
                ring_capacity: 8, // 1 slot per shard
                slow_capacity: 4,
                ..TraceConfig::default()
            },
        );
        for i in 0..20u64 {
            let _op = t.op(OpKind::Read, "/r", i);
        }
        let recs = t.recent();
        assert_eq!(recs.len(), 1, "single-thread traffic homes to one shard");
        assert_eq!(recs[0].bytes, 19, "newest survives");
        assert_eq!(t.ops(), 20);
    }

    #[test]
    fn long_and_multibyte_paths_truncate_safely() {
        let (_reg, t) = tracer();
        let long = format!("/{}", "x".repeat(100));
        {
            let _op = t.op(OpKind::Read, &long, 0);
        }
        let multi = format!("/{}", "é".repeat(40));
        {
            let _op = t.op(OpKind::Read, &multi, 0);
        }
        let recs = t.recent();
        assert_eq!(recs[0].file().len(), FILE_TAG_LEN);
        assert!(recs[1].file().starts_with("/é"));
    }

    #[test]
    fn phase_names_cover_all_phases() {
        assert_eq!(PHASE_NAMES.len(), NUM_PHASES);
    }

    #[test]
    fn export_includes_slow_and_recent() {
        let (_reg, t) = tracer();
        t.set_slow_threshold(Duration::ZERO);
        {
            let _op = t.op(OpKind::Read, "/e", 5);
        }
        let mut snap = Snapshot::new();
        t.export(&mut snap, "trace");
        let json = snap.to_json();
        assert!(json.contains("\"slow\""), "{json}");
        assert!(json.contains("\"/e\""), "{json}");
    }

    #[test]
    fn cross_thread_ops_all_land() {
        let (_reg, t) = tracer();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = (*t).clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        let _op = t.op(OpKind::Write, "/t", i);
                    }
                });
            }
        });
        assert_eq!(t.ops(), 200);
        assert_eq!(t.op_histogram(OpKind::Write).count, 200);
    }
}
