//! Uniform export: compose every tier's stats into one serializable tree.
//!
//! A [`Snapshot`] is a list of named sections. Each section holds an
//! arbitrary `serde::Serialize` stats struct (added with
//! [`Snapshot::section`] — the tiers' `IoCounters`, `CacheStats`,
//! `PoolStats`, `DistStats`, `ScrubReport`, … all compose without
//! hand-rolled glue because they serialize through the same `Value` tree)
//! plus any number of named latency [histograms](`crate::HistSnapshot`).
//!
//! Two renderers cover the two consumers:
//!
//! * [`Snapshot::to_json`] — pretty JSON, one object per section, for files
//!   and humans;
//! * [`Snapshot::to_prometheus`] — Prometheus-style text exposition: every
//!   numeric leaf becomes `lamassu_<section>_<path> <value>`,
//!   `Duration`-shaped `{secs, nanos}` objects collapse into a single
//!   `_seconds` float, and histograms render as the standard cumulative
//!   `_bucket{le="…"}` / `_sum` / `_count` triple.

use crate::hist::{bucket_upper, HistSnapshot};
use serde::{Serialize, Value};
use std::fmt::Write as _;

struct Section {
    name: String,
    value: Value,
    hists: Vec<(String, HistSnapshot)>,
}

/// A composed, serializable view of the whole stack's stats (see the module
/// docs).
///
/// # Examples
///
/// ```
/// use lamassu_telemetry::{Histogram, Snapshot};
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Stats {
///     ops: u64,
/// }
///
/// let h = Histogram::new();
/// h.record(1200);
/// let mut snap = Snapshot::new();
/// snap.section("shim", &Stats { ops: 9 });
/// snap.histogram("shim", "read_ns", h.snapshot());
/// assert!(snap.to_json().contains("\"ops\": 9"));
/// assert!(snap.to_prometheus().contains("lamassu_shim_ops 9"));
/// ```
#[derive(Default)]
pub struct Snapshot {
    sections: Vec<Section>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    fn section_mut(&mut self, name: &str) -> &mut Section {
        if let Some(i) = self.sections.iter().position(|s| s.name == name) {
            return &mut self.sections[i];
        }
        self.sections.push(Section {
            name: name.to_string(),
            value: Value::Object(Vec::new()),
            hists: Vec::new(),
        });
        self.sections.last_mut().expect("just pushed")
    }

    /// Adds (or merges into) section `name` from any `Serialize` stats
    /// struct. Repeated calls on the same section merge object keys, later
    /// calls winning on conflicts.
    pub fn section<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        self.section_value(name, value.to_value());
    }

    /// Adds (or merges) an already-built [`Value`] under section `name`.
    pub fn section_value(&mut self, name: &str, value: Value) {
        let section = self.section_mut(name);
        match (&mut section.value, value) {
            (Value::Object(existing), Value::Object(new)) => {
                for (k, v) in new {
                    if let Some(slot) = existing.iter_mut().find(|(ek, _)| *ek == k) {
                        slot.1 = v;
                    } else {
                        existing.push((k, v));
                    }
                }
            }
            (slot, new) => *slot = new,
        }
    }

    /// Attaches a latency histogram named `name` to section `section`.
    pub fn histogram(&mut self, section: &str, name: &str, snap: HistSnapshot) {
        let section = self.section_mut(section);
        if let Some(slot) = section.hists.iter_mut().find(|(n, _)| n == name) {
            slot.1 = snap;
        } else {
            section.hists.push((name.to_string(), snap));
        }
    }

    /// Renders the whole snapshot as pretty JSON: one object per section,
    /// histograms nested under a `latency` key.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("value tree renders infallibly")
    }

    /// Renders the whole snapshot in the Prometheus text exposition format.
    /// Metric names are `lamassu_<section>_<flattened path>`; see the module
    /// docs for the flattening rules.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            let base = format!("lamassu_{}", sanitize(&section.name));
            flatten(&mut out, &base, &section.value);
            for (name, hist) in &section.hists {
                prometheus_histogram(&mut out, &format!("{base}_{}", sanitize(name)), hist);
            }
        }
        out
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        let sections = self
            .sections
            .iter()
            .map(|s| {
                let mut v = s.value.clone();
                if !s.hists.is_empty() {
                    let hists = Value::Object(
                        s.hists
                            .iter()
                            .map(|(n, h)| (n.clone(), h.to_value()))
                            .collect(),
                    );
                    match &mut v {
                        Value::Object(pairs) => pairs.push(("latency".into(), hists)),
                        other => {
                            *other = Value::Object(vec![
                                ("value".into(), other.clone()),
                                ("latency".into(), hists),
                            ])
                        }
                    }
                }
                (s.name.clone(), v)
            })
            .collect();
        Value::Object(sections)
    }
}

/// Maps a name into the Prometheus metric-name alphabet.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// True for `{secs, nanos}` objects, the shape `Duration` serializes to.
fn as_duration_seconds(pairs: &[(String, Value)]) -> Option<f64> {
    if pairs.len() != 2 {
        return None;
    }
    let secs = pairs.iter().find(|(k, _)| k == "secs")?;
    let nanos = pairs.iter().find(|(k, _)| k == "nanos")?;
    match (&secs.1, &nanos.1) {
        (Value::U64(s), Value::U64(n)) => Some(*s as f64 + *n as f64 * 1e-9),
        _ => None,
    }
}

/// Emits every numeric leaf of `v` as `<prefix>_<path> <value>`.
fn flatten(out: &mut String, prefix: &str, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = writeln!(out, "{prefix} {n}");
        }
        Value::I64(n) => {
            let _ = writeln!(out, "{prefix} {n}");
        }
        Value::F64(n) if n.is_finite() => {
            let _ = writeln!(out, "{prefix} {n}");
        }
        Value::Bool(b) => {
            let _ = writeln!(out, "{prefix} {}", u8::from(*b));
        }
        Value::Object(pairs) => {
            if let Some(secs) = as_duration_seconds(pairs) {
                let _ = writeln!(out, "{prefix}_seconds {secs}");
            } else {
                for (k, v) in pairs {
                    flatten(out, &format!("{prefix}_{}", sanitize(k)), v);
                }
            }
        }
        // Strings, nulls, non-finite floats and arrays have no numeric
        // exposition; JSON keeps them.
        _ => {}
    }
}

/// Emits one histogram as cumulative `_bucket{le="…"}` lines plus `_sum`
/// and `_count`, listing only the buckets that hold data.
fn prometheus_histogram(out: &mut String, name: &str, hist: &HistSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &n) in hist.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "{name}_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_count {}", hist.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use std::time::Duration;

    #[derive(Serialize)]
    struct Demo {
        ops: u64,
        rate: f64,
        busy: Duration,
        label: String,
    }

    fn demo() -> Demo {
        Demo {
            ops: 41,
            rate: 0.5,
            busy: Duration::new(2, 500_000_000),
            label: "x".into(),
        }
    }

    #[test]
    fn json_nests_sections_and_histograms() {
        let h = Histogram::new();
        h.record(77);
        let mut snap = Snapshot::new();
        snap.section("tier", &demo());
        snap.histogram("tier", "read_ns", h.snapshot());
        let json = snap.to_json();
        assert!(json.contains("\"tier\""), "{json}");
        assert!(json.contains("\"ops\": 41"), "{json}");
        assert!(json.contains("\"latency\""), "{json}");
        assert!(json.contains("\"read_ns\""), "{json}");
    }

    #[test]
    fn sections_merge_and_overwrite() {
        let mut snap = Snapshot::new();
        snap.section("t", &demo());
        snap.section_value(
            "t",
            Value::Object(vec![
                ("ops".into(), Value::U64(99)),
                ("extra".into(), Value::U64(1)),
            ]),
        );
        let json = snap.to_json();
        assert!(json.contains("\"ops\": 99"), "{json}");
        assert!(json.contains("\"extra\": 1"), "{json}");
        assert!(json.contains("\"rate\""), "{json}");
    }

    #[test]
    fn prometheus_flattens_leaves_and_durations() {
        let mut snap = Snapshot::new();
        snap.section("cache tier", &demo());
        let text = snap.to_prometheus();
        assert!(text.contains("lamassu_cache_tier_ops 41"), "{text}");
        assert!(text.contains("lamassu_cache_tier_rate 0.5"), "{text}");
        assert!(
            text.contains("lamassu_cache_tier_busy_seconds 2.5"),
            "{text}"
        );
        assert!(!text.contains("label"), "strings must be skipped: {text}");
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(1_000);
        let mut snap = Snapshot::new();
        snap.histogram("shim", "lat", h.snapshot());
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE lamassu_shim_lat histogram"), "{text}");
        assert!(
            text.contains("lamassu_shim_lat_bucket{le=\"5\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("lamassu_shim_lat_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("lamassu_shim_lat_sum 1010"), "{text}");
        assert!(text.contains("lamassu_shim_lat_count 3"), "{text}");
        // The 1000 bucket's cumulative count includes the earlier two.
        let last = text
            .lines()
            .rfind(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .unwrap();
        assert!(last.ends_with(" 3"), "{last}");
    }
}
