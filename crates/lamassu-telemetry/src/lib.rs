//! Always-on observability substrate for the Lamassu reproduction.
//!
//! The paper's Figure 9 reports wall-clock *sums* per latency category — one
//! number per category at experiment end. That is enough to reproduce the
//! figure but not to run the stack as a service: a production mount needs
//! latency *distributions* (p50/p95/p99 per operation), live counters, and a
//! trace of what each slow operation actually did. This crate provides that
//! substrate with the constraint the rest of the workspace already enforces:
//! the steady-state data path performs **zero heap allocations per
//! operation** (`tests/zero_alloc.rs`), so every telemetry structure is
//! preallocated at mount time and the record path is lock-free atomics (or
//! one uncontended sharded lock for trace rings) — never the global
//! allocator.
//!
//! * [`hist`] — fixed-bucket log-linear [`Histogram`]: preallocated
//!   `AtomicU64` buckets, lock-free [`Histogram::record`], mergeable
//!   [`HistSnapshot`]s with p50/p95/p99/max quantile estimates accurate to
//!   one bucket width (buckets grow ~12.5 % per step, so quantiles are
//!   exact to better than one part in eight).
//! * [`registry`] — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   histograms. Registration (get-or-create by name) allocates and belongs
//!   at mount time; the returned handles are `Arc`-shared atomics that are
//!   free to bump on the hot path.
//! * [`trace`] — per-operation spans: [`Tracer::op`] opens an [`OpGuard`]
//!   that, on drop, writes one fixed-size [`TraceRecord`] (op kind, file
//!   tag, bytes, total latency, per-phase child timings) into a preallocated
//!   per-thread-sharded ring buffer, records the op's latency histogram, and
//!   retains any op slower than a configurable threshold in a dedicated
//!   slow-op ring.
//! * [`snapshot`] — uniform export: a [`Snapshot`] composes any
//!   `serde::Serialize` stats struct (the tiers' `IoCounters`, `CacheStats`,
//!   `PoolStats`, `DistStats`, …) plus histograms, and renders the whole
//!   tree as pretty JSON or Prometheus-style text exposition.
//!
//! The crate is a leaf: every other workspace crate can depend on it, so the
//! shims, the cache, the router and the workload driver all export through
//! the same types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use hist::{HistSnapshot, Histogram, LatencySummary};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::Snapshot;
pub use trace::{OpGuard, OpKind, TraceConfig, TraceRecord, Tracer, NUM_PHASES, PHASE_NAMES};
