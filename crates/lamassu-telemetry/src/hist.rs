//! Fixed-bucket log-linear latency histograms.
//!
//! A [`Histogram`] is a preallocated array of `AtomicU64` buckets covering
//! the whole `u64` range: values below 8 get their own width-1 bucket, and
//! every octave above that is split into 8 linear sub-buckets, so relative
//! bucket width is at most 12.5 % everywhere. That gives HdrHistogram-style
//! quantile accuracy (estimates are off by less than one bucket width, i.e.
//! one part in eight) from a flat 496-slot table of ~4 KiB — small enough to
//! keep one histogram per latency category per mount, preallocated, with a
//! completely lock-free, allocation-free [`Histogram::record`].
//!
//! [`HistSnapshot`] is the read side: a plain copied-out bucket vector that
//! can be [merged](HistSnapshot::merge) across threads, jobs or mounts
//! (merged snapshots are exactly the histogram of the union of the inputs)
//! and reduced to p50/p95/p99/max via [`HistSnapshot::quantile`] or the
//! compact [`LatencySummary`].

use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-buckets per octave (8 → ≤ 12.5 % relative bucket width).
const SUB_BUCKETS: usize = 8;

/// Total bucket count: indices 0..16 are width-1, then 8 sub-buckets for
/// each of the remaining 60 octaves up to `u64::MAX`.
pub const NUM_BUCKETS: usize = 496;

/// The bucket index holding `v`. Monotone in `v`; total over all of `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        // Bit length of v (≥ 4). The top bit picks the octave, the next
        // three bits pick the linear sub-bucket inside it.
        let b = 64 - v.leading_zeros() as usize;
        let sub = ((v >> (b - 4)) & 7) as usize;
        (b - 3) * SUB_BUCKETS + sub
    }
}

/// Smallest value landing in bucket `i` (the bucket is
/// `[bucket_lower(i), bucket_lower(i + 1))`; the last bucket is closed at
/// `u64::MAX`).
pub fn bucket_lower(i: usize) -> u64 {
    if i < 2 * SUB_BUCKETS {
        i as u64
    } else {
        let octave = i / SUB_BUCKETS; // ≥ 2
        let sub = (i % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + sub) << (octave - 1)
    }
}

/// Largest value landing in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

struct HistInner {
    buckets: Box<[AtomicU64]>, // NUM_BUCKETS long, preallocated
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64, // u64::MAX until the first record
    max: AtomicU64,
}

/// A shareable, preallocated, lock-free latency histogram (see the module
/// docs). Cloning is cheap and shares the same buckets.
///
/// # Examples
///
/// ```
/// use lamassu_telemetry::Histogram;
///
/// let h = Histogram::new();
/// for v in [10, 12, 900, 90_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.max, 90_000);
/// assert!(snap.quantile(0.5) >= 10 && snap.quantile(0.5) <= 13);
/// ```
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.quantile(0.5))
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram. This is the **one** allocating call —
    /// everything after construction is atomics on preallocated storage.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// True if `other` shares this histogram's buckets.
    pub fn same_histogram(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Records one value. Lock-free, allocation-free, wait-free on every
    /// mainstream platform — safe on the zero-allocation hot path.
    #[inline]
    pub fn record(&self, value: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(value, Ordering::Relaxed);
        i.min.fetch_min(value, Ordering::Relaxed);
        i.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Copies the current state out. Concurrent recorders may land between
    /// the individual loads, so a snapshot's totals can trail its buckets by
    /// in-flight records; each counter itself is exact and monotone.
    pub fn snapshot(&self) -> HistSnapshot {
        let i = &self.inner;
        let buckets: Vec<u64> = i
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = i.count.load(Ordering::Relaxed);
        HistSnapshot {
            buckets,
            count,
            sum: i.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                i.min.load(Ordering::Relaxed)
            },
            max: i.max.load(Ordering::Relaxed),
        }
    }

    /// Estimates the `q`-quantile directly from the live buckets, without
    /// copying a snapshot out — **allocation-free**, so hot-path consumers
    /// (e.g. a hedged-read threshold refresh) can call it per-op. Same
    /// bucket-resolution estimate as [`HistSnapshot::quantile`]; under
    /// concurrent recording the walk sees each bucket once, so the estimate
    /// can trail in-flight records by at most those records. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let i = &self.inner;
        let count = i.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let max = i.max.load(Ordering::Relaxed);
        let min = i.min.load(Ordering::Relaxed);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, bucket) in i.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(b).min(max).max(min);
            }
        }
        max
    }

    /// Total recorded values (allocation-free; see [`Histogram::quantile`]).
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket and counter (a measurement-window reset). Racing
    /// recorders are not lost wholesale — each atomic is cleared
    /// independently — but a record striding the reset may split across the
    /// windows; don't reset while precise cross-window accounting matters.
    pub fn reset(&self) {
        let i = &self.inner;
        for b in i.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        i.count.store(0, Ordering::Relaxed);
        i.sum.store(0, Ordering::Relaxed);
        i.min.store(u64::MAX, Ordering::Relaxed);
        i.max.store(0, Ordering::Relaxed);
    }
}

/// A copied-out histogram state: mergeable, quantile-queryable, serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, [`NUM_BUCKETS`] long (see [`bucket_lower`]).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping only after ~584 years of
    /// nanoseconds).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Element-wise union: the merged snapshot is exactly the histogram of
    /// all values recorded into either input.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(other.buckets.iter())
            .map(|(a, b)| a + b)
            .collect();
        HistSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: self.max.max(other.max),
        }
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) of the recorded values.
    /// The estimate lies in the same bucket as the exact quantile, so the
    /// error is below one bucket width (≤ 12.5 % of the value). Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The exact rank-th value is somewhere in bucket i; report
                // the bucket's top clamped into the observed range.
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Reduces to the compact fixed-size summary used in result structs.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean() as u64,
            p50_ns: self.p50(),
            p95_ns: self.p95(),
            p99_ns: self.p99(),
            max_ns: self.max,
        }
    }
}

impl Serialize for HistSnapshot {
    /// Compact form: totals, quantiles, and only the non-empty buckets as
    /// `[bucket lower bound, count]` pairs.
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Value::Array(vec![Value::U64(bucket_lower(i)), Value::U64(n)]))
            .collect();
        Value::Object(vec![
            ("count".into(), Value::U64(self.count)),
            ("sum".into(), Value::U64(self.sum)),
            ("min".into(), Value::U64(self.min)),
            ("max".into(), Value::U64(self.max)),
            ("p50".into(), Value::U64(self.p50())),
            ("p95".into(), Value::U64(self.p95())),
            ("p99".into(), Value::U64(self.p99())),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

/// Fixed-size latency roll-up (nanoseconds) for embedding in `Copy` result
/// structs like `lamassu-workloads`' `FioResult`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LatencySummary {
    /// Operations measured.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: u64,
    /// Median latency estimate in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency estimate in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency estimate in nanoseconds.
    pub p99_ns: u64,
    /// Worst observed latency in nanoseconds.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_quantile_matches_snapshot_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0, "empty histogram");
        let mut x = 0x1234_5678u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), snap.quantile(q), "q={q}");
        }
        assert_eq!(h.count(), 500);
    }

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = None;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_lower(i) <= v, "lower bound violated for {v}");
            assert!(v <= bucket_upper(i), "upper bound violated for {v}");
            if let Some(prev) = last {
                assert!(i >= prev, "index not monotone at {v}");
            }
            last = Some(i);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_line() {
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_upper(i) + 1,
                bucket_lower(i + 1),
                "gap or overlap after bucket {i}"
            );
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_snapshot_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // Exact p50 is 500; one bucket width at 500 is 32.
        let p50 = s.p50();
        assert!((468..=532).contains(&p50), "p50 estimate {p50}");
        let p99 = s.p99();
        assert!((926..=1000).contains(&p99), "p99 estimate {p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert_eq!(s.summary(), LatencySummary::default());
    }

    #[test]
    fn merge_is_the_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [3u64, 9, 40, 700] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 40, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn merge_with_empty_keeps_min() {
        let a = Histogram::new();
        a.record(42);
        let merged = a.snapshot().merge(&HistSnapshot::default());
        assert_eq!(merged.min, 42);
        let merged = HistSnapshot::default().merge(&a.snapshot());
        assert_eq!(merged.min, 42);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(5);
        h.record(12345);
        h.reset();
        assert_eq!(h.snapshot(), HistSnapshot::default());
        h.record(7);
        assert_eq!(h.snapshot().min, 7);
    }

    #[test]
    fn clones_share_buckets() {
        let h = Histogram::new();
        let h2 = h.clone();
        h2.record(99);
        assert!(h.same_histogram(&h2));
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 997));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn serializes_compactly() {
        let h = Histogram::new();
        h.record(10);
        h.record(10);
        let json = serde_json::to_string(&h.snapshot()).unwrap();
        assert!(json.contains("\"count\":2"), "{json}");
        assert!(json.contains("[10,2]"), "{json}");
    }
}
