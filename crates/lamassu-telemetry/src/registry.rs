//! Named metric registry: counters, gauges and histograms by name.
//!
//! A [`Registry`] is the mount-time directory of everything a process
//! exports. Handles are get-or-create by name — [`Registry::counter`],
//! [`Registry::gauge`] and [`Registry::histogram`] allocate on the *first*
//! request for a name and afterwards return clones sharing the same atomics,
//! so two tiers asking for the same metric see one counter. Registration
//! belongs at mount/setup time; the returned [`Counter`]/[`Gauge`]/
//! [`Histogram`] handles are plain `Arc`'d atomics that are free to bump on
//! the zero-allocation hot path.
//!
//! [`Registry::export`] dumps every registered metric into a
//! [`crate::Snapshot`] section, sorted by name.

use crate::hist::Histogram;
use crate::snapshot::Snapshot;
use parking_lot::Mutex;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable point-in-time value. Cloning shares the same cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero under concurrent mixes only as far
    /// as `fetch_sub` wraps — callers keep add/sub balanced.
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The process's metric directory (see the module docs). Cloning is cheap
/// and shares the same registry.
///
/// # Examples
///
/// ```
/// use lamassu_telemetry::Registry;
///
/// let reg = Registry::new();
/// let ops = reg.counter("shim.ops");
/// ops.inc();
/// reg.counter("shim.ops").inc(); // same underlying counter
/// assert_eq!(ops.get(), 2);
/// ```
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Allocates only on creation — call at setup time, keep the handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        map.insert(name.to_string(), c.clone());
        c
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock();
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        map.insert(name.to_string(), g.clone());
        g
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Histogram::new();
        map.insert(name.to_string(), h.clone());
        h
    }

    /// Dumps every registered metric into `snap` under `section`: counters
    /// and gauges as a name → value object, histograms as full
    /// distributions.
    pub fn export(&self, snap: &mut Snapshot, section: &str) {
        let mut pairs: Vec<(String, Value)> = Vec::new();
        for (name, c) in self.inner.counters.lock().iter() {
            pairs.push((name.clone(), Value::U64(c.get())));
        }
        for (name, g) in self.inner.gauges.lock().iter() {
            pairs.push((name.clone(), Value::U64(g.get())));
        }
        snap.section_value(section, Value::Object(pairs));
        for (name, h) in self.inner.histograms.lock().iter() {
            snap.histogram(section, name, h.snapshot());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_by_name() {
        let reg = Registry::new();
        reg.counter("a").add(5);
        assert_eq!(reg.counter("a").get(), 5);
        reg.gauge("g").set(9);
        reg.gauge("g").sub(2);
        assert_eq!(reg.gauge("g").get(), 7);
        assert_eq!(reg.counter("other").get(), 0);
    }

    #[test]
    fn histograms_share_by_name() {
        let reg = Registry::new();
        reg.histogram("lat").record(100);
        let h = reg.histogram("lat");
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn export_lists_everything_sorted() {
        let reg = Registry::new();
        reg.counter("z.ops").inc();
        reg.counter("a.ops").add(3);
        reg.gauge("depth").set(2);
        reg.histogram("lat").record(50);
        let mut snap = Snapshot::new();
        reg.export(&mut snap, "metrics");
        let json = snap.to_json();
        assert!(json.contains("\"a.ops\": 3"), "{json}");
        assert!(json.contains("\"z.ops\": 1"), "{json}");
        assert!(json.contains("\"depth\": 2"), "{json}");
        assert!(json.contains("\"lat\""), "{json}");
    }
}
