//! Property tests for the log-linear histogram (ISSUE 7 satellite).
//!
//! Three families, each against the exact multiset of recorded values:
//!
//! * **Bucketing** — every value lands in the bucket whose bounds contain
//!   it, and the bounds tile the `u64` line with no gaps or overlaps.
//! * **Merging** — the merge of two snapshots equals the snapshot of the
//!   union of the inputs, bucket for bucket and counter for counter.
//! * **Quantiles** — for random workloads, every quantile estimate lies in
//!   the same bucket as the exact order statistic, i.e. within one bucket
//!   width (≤ 12.5 % of the value).

use lamassu_telemetry::hist::{bucket_index, bucket_lower, bucket_upper, NUM_BUCKETS};
use lamassu_telemetry::Histogram;
use proptest::prelude::*;

/// Values spread over the interesting ranges: tiny exact buckets,
/// nanosecond-scale latencies, and the huge tail.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => 0u64..64,
        4 => 0u64..2_000_000,
        2 => 0u64..u64::MAX / 2,
        1 => (u64::MAX - 1_000_000)..=u64::MAX,
    ]
}

/// The exact `q`-quantile of a sorted sample: the smallest value whose rank
/// reaches `ceil(q * n)` (matching `HistSnapshot::quantile`'s rank rule).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn values_land_in_their_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower(i) <= v);
        prop_assert!(v <= bucket_upper(i));
        // Neighbouring buckets do not also claim v.
        if i > 0 {
            prop_assert!(bucket_upper(i - 1) < v);
        }
        if i + 1 < NUM_BUCKETS {
            prop_assert!(v < bucket_lower(i + 1));
        }
    }

    #[test]
    fn recording_counts_every_value(values in prop::collection::vec(value_strategy(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.min, *values.iter().min().unwrap());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert_eq!(
            s.sum,
            values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v))
        );
        // Bucket for bucket, the snapshot is the multiset's histogram.
        for (i, &n) in s.buckets.iter().enumerate() {
            let expect = values.iter().filter(|&&v| bucket_index(v) == i).count() as u64;
            prop_assert_eq!(n, expect, "bucket {}", i);
        }
    }

    #[test]
    fn merged_snapshots_equal_the_union(
        a in prop::collection::vec(value_strategy(), 0..120),
        b in prop::collection::vec(value_strategy(), 0..120),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        prop_assert_eq!(ha.snapshot().merge(&hb.snapshot()), hu.snapshot());
        // Merge is symmetric.
        prop_assert_eq!(hb.snapshot().merge(&ha.snapshot()), hu.snapshot());
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_exact(
        mut values in prop::collection::vec(value_strategy(), 1..300),
        q_mille in 0u64..=1000,
    ) {
        let q = q_mille as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_quantile(&values, q);
        let estimate = h.snapshot().quantile(q);
        // Same bucket as the exact order statistic → error < bucket width.
        let i = bucket_index(exact);
        prop_assert!(
            bucket_lower(i) <= estimate && estimate <= bucket_upper(i),
            "estimate {} for exact {} strayed from bucket {}",
            estimate,
            exact,
            i
        );
    }

    #[test]
    fn summary_orders_its_quantiles(values in prop::collection::vec(value_strategy(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot().summary();
        prop_assert!(s.p50_ns <= s.p95_ns);
        prop_assert!(s.p95_ns <= s.p99_ns);
        prop_assert!(s.p99_ns <= s.max_ns);
        prop_assert_eq!(s.count, values.len() as u64);
    }
}
